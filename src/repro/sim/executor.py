"""Schedule executor: prices an op stream under a physical model.

The executor replays a :class:`~repro.sim.program.Program` against its
machine — any machine resolved from a registry spec string
(``"eml:16:2"``, ``"grid:2x2:12"``...) or lowered from a declarative
:class:`~repro.hardware.ArchitectureSpec` — maintaining per-zone ion
chains and per-zone accumulated heat, validating every op's legality as
it goes, and accumulating:

* shuttle statistics (splits, moves, merges, chain swaps),
* serial execution time (sum of op durations, the paper's time metric) and a
  resource-constrained parallel makespan,
* log-domain circuit fidelity per §4's model: Eq. 1 for trap ops, ``1-εN²``
  for local 2q gates, 0.99 for fiber gates, everything multiplied by the
  background fidelity ``B_i = exp(-k·heat_i)`` of the zone(s) involved.

Because compilers emit descriptive ops only, the same program can be
re-priced under :meth:`PhysicalParams.perfect_gate` or
:meth:`~PhysicalParams.perfect_shuttle` (Fig 13) or any capacity variant.
"""

from __future__ import annotations

from ..physics import (
    FidelityLedger,
    PhysicalParams,
    shuttle_log_fidelity,
)
from ..physics.timing import move_duration_us
from .metrics import ExecutionReport
from .ops import (
    ChainSwapOp,
    FiberGateOp,
    GateOp,
    MergeOp,
    MoveOp,
    Operation,
    SplitOp,
    SwapGateOp,
)
from .program import Program


class ExecutionError(RuntimeError):
    """Raised when an op is illegal for the current machine state."""

    def __init__(self, message: str, op_index: int | None = None) -> None:
        if op_index is not None:
            message = f"op #{op_index}: {message}"
        super().__init__(message)
        self.op_index = op_index


class _MachineReplay:
    """Mutable chain/transit state shared by execution and verification."""

    def __init__(self, program: Program) -> None:
        self.machine = program.machine
        self.chains: dict[int, list[int]] = {
            zone.zone_id: [] for zone in program.machine.zones
        }
        for zone_id, chain in program.initial_placement.items():
            self.chains[zone_id] = list(chain)
        self.location: dict[int, int] = {}
        for zone_id, chain in self.chains.items():
            for qubit in chain:
                self.location[qubit] = zone_id
        #: qubit -> zone it is hovering over while detached (None = in chain).
        self.in_transit: dict[int, int] = {}

    # -- shuttle ops -----------------------------------------------------

    def split(self, op: SplitOp, index: int) -> None:
        if op.qubit in self.in_transit:
            raise ExecutionError(f"qubit {op.qubit} is already detached", index)
        zone_id = self.location.get(op.qubit)
        if zone_id != op.zone:
            raise ExecutionError(
                f"qubit {op.qubit} is in zone {zone_id}, not {op.zone}", index
            )
        chain = self.chains[op.zone]
        position = chain.index(op.qubit)
        if position not in (0, len(chain) - 1):
            raise ExecutionError(
                f"qubit {op.qubit} is at interior position {position} of "
                f"zone {op.zone} (chain swaps required before split)",
                index,
            )
        chain.remove(op.qubit)
        del self.location[op.qubit]
        self.in_transit[op.qubit] = op.zone

    def move(self, op: MoveOp, index: int) -> None:
        at = self.in_transit.get(op.qubit)
        if at is None:
            raise ExecutionError(f"qubit {op.qubit} is not detached", index)
        if at != op.source_zone:
            raise ExecutionError(
                f"qubit {op.qubit} is over zone {at}, not {op.source_zone}",
                index,
            )
        if op.destination_zone not in self.machine.neighbours(op.source_zone):
            raise ExecutionError(
                f"zones {op.source_zone} and {op.destination_zone} are not "
                "shuttle-adjacent",
                index,
            )
        self.in_transit[op.qubit] = op.destination_zone

    def merge(self, op: MergeOp, index: int) -> None:
        at = self.in_transit.get(op.qubit)
        if at is None:
            raise ExecutionError(f"qubit {op.qubit} is not detached", index)
        if at != op.zone:
            raise ExecutionError(
                f"qubit {op.qubit} is over zone {at}, not {op.zone}", index
            )
        chain = self.chains[op.zone]
        zone = self.machine.zone(op.zone)
        if len(chain) >= zone.capacity:
            raise ExecutionError(
                f"zone {op.zone} is full (capacity {zone.capacity})", index
            )
        if op.side == "head":
            chain.insert(0, op.qubit)
        elif op.side == "tail":
            chain.append(op.qubit)
        else:
            raise ExecutionError(f"bad merge side {op.side!r}", index)
        del self.in_transit[op.qubit]
        self.location[op.qubit] = op.zone

    def chain_swap(self, op: ChainSwapOp, index: int) -> None:
        chain = self.chains[op.zone]
        if not 0 <= op.position < len(chain) - 1:
            raise ExecutionError(
                f"chain swap position {op.position} out of range for zone "
                f"{op.zone} (chain length {len(chain)})",
                index,
            )
        chain[op.position], chain[op.position + 1] = (
            chain[op.position + 1],
            chain[op.position],
        )

    # -- gate ops ----------------------------------------------------------

    def check_local_gate(self, op: GateOp, index: int) -> int:
        """Validate a local gate; returns ions-in-trap for fidelity."""
        zone = self.machine.zone(op.zone)
        for qubit in op.gate.qubits:
            location = self.location.get(qubit)
            if location != op.zone:
                raise ExecutionError(
                    f"gate {op.gate} expects qubit {qubit} in zone {op.zone}, "
                    f"found {location}",
                    index,
                )
        if op.gate.is_two_qubit and not zone.allows_gates:
            raise ExecutionError(
                f"zone {op.zone} ({zone.kind.value}) cannot execute two-qubit "
                f"gates",
                index,
            )
        return len(self.chains[op.zone])

    def check_fiber_gate(self, op: FiberGateOp, index: int) -> None:
        zone_a = self.machine.zone(op.zone_a)
        zone_b = self.machine.zone(op.zone_b)
        if not (zone_a.allows_fiber and zone_b.allows_fiber):
            raise ExecutionError(
                f"fiber gate needs optical zones, got {zone_a.kind.value} and "
                f"{zone_b.kind.value}",
                index,
            )
        if zone_a.module_id == zone_b.module_id:
            raise ExecutionError(
                "fiber gate endpoints must be in different modules", index
            )
        qubit_a, qubit_b = op.gate.qubits
        if self.location.get(qubit_a) != op.zone_a:
            raise ExecutionError(
                f"fiber gate expects qubit {qubit_a} in zone {op.zone_a}, "
                f"found {self.location.get(qubit_a)}",
                index,
            )
        if self.location.get(qubit_b) != op.zone_b:
            raise ExecutionError(
                f"fiber gate expects qubit {qubit_b} in zone {op.zone_b}, "
                f"found {self.location.get(qubit_b)}",
                index,
            )

    def apply_swap_gate(self, op: SwapGateOp, index: int) -> None:
        """Validate and apply a logical SWAP (exchanges chain labels)."""
        for qubit, zone_id in ((op.qubit_a, op.zone_a), (op.qubit_b, op.zone_b)):
            if self.location.get(qubit) != zone_id:
                raise ExecutionError(
                    f"swap expects qubit {qubit} in zone {zone_id}, found "
                    f"{self.location.get(qubit)}",
                    index,
                )
        if op.is_remote:
            zone_a = self.machine.zone(op.zone_a)
            zone_b = self.machine.zone(op.zone_b)
            if not (zone_a.allows_fiber and zone_b.allows_fiber):
                raise ExecutionError(
                    "remote swap endpoints must be optical zones", index
                )
            if zone_a.module_id == zone_b.module_id:
                raise ExecutionError(
                    "remote swap endpoints must be in different modules", index
                )
        else:
            if not self.machine.zone(op.zone_a).allows_gates:
                raise ExecutionError(
                    f"zone {op.zone_a} cannot execute gates", index
                )
        chain_a = self.chains[op.zone_a]
        chain_b = self.chains[op.zone_b]
        index_a = chain_a.index(op.qubit_a)
        index_b = chain_b.index(op.qubit_b)
        chain_a[index_a] = op.qubit_b
        chain_b[index_b] = op.qubit_a
        self.location[op.qubit_a] = op.zone_b
        self.location[op.qubit_b] = op.zone_a


def execute(
    program: Program,
    params: PhysicalParams | None = None,
    *,
    include_idle_decoherence: bool = False,
) -> ExecutionReport:
    """Replay and price a program; raises :class:`ExecutionError` on any
    illegal op.

    ``include_idle_decoherence`` additionally charges pure T1 decay for each
    qubit's idle time (makespan minus its busy time).  Off by default: with
    the paper's T1 = 600 s the term is negligible, and the paper's §4 model
    charges decay per operation only.

    The loop is hot-path tuned — exact-class dispatch, per-op-kind
    fidelity/duration constants hoisted out of the loop, and the
    resource-availability bookkeeping inlined per op shape — but charges
    the ledger in exactly the seed's order, so every report field matches
    the pre-optimization executor bit for bit (the differential suite
    asserts it).
    """
    params = params or PhysicalParams()
    program.validate_placement()
    replay = _MachineReplay(program)
    ledger = FidelityLedger()
    heat: dict[int, float] = {zone.zone_id: 0.0 for zone in program.machine.zones}
    serial_time = 0.0
    # Resource-availability times for the parallel makespan: qubits and zones.
    qubit_ready: dict[int, float] = {}
    zone_ready: dict[int, float] = {}
    qubit_busy: dict[int, float] = {}

    splits = moves = merges = chain_swaps = 0
    one_qubit_gates = two_qubit_gates = fiber_gates = 0
    inserted_swaps = remote_swaps = 0

    charge_log = ledger.charge_log
    charge_linear = ledger.charge_linear
    qubit_ready_get = qubit_ready.get
    zone_ready_get = zone_ready.get
    qubit_busy_get = qubit_busy.get

    # Per-kind constants: the trap-op fidelity charges depend only on the
    # physical parameters, never on machine state.
    move_time = move_duration_us(params.inter_zone_distance_um, params)
    split_time = params.split_time_us
    merge_time = params.merge_time_us
    chain_swap_time = params.chain_swap_time_us
    split_nbar = params.split_nbar
    move_nbar = params.move_nbar
    merge_nbar = params.merge_nbar
    chain_swap_nbar = params.chain_swap_nbar
    split_log = shuttle_log_fidelity(split_time, split_nbar, params)
    move_log = shuttle_log_fidelity(move_time, move_nbar, params)
    merge_log = shuttle_log_fidelity(merge_time, merge_nbar, params)
    chain_swap_log = shuttle_log_fidelity(chain_swap_time, chain_swap_nbar, params)
    heating_rate = params.heating_rate  # background = -heating_rate * heat
    one_qubit_fidelity = params.one_qubit_gate_fidelity
    fiber_fidelity = params.fiber_gate_fidelity
    one_qubit_time = params.one_qubit_gate_time_us
    two_qubit_time = params.two_qubit_gate_time_us
    fiber_time = params.fiber_gate_time_us
    two_qubit_gate_fidelity = params.two_qubit_gate_fidelity

    replay_split = replay.split
    replay_move = replay.move
    replay_merge = replay.merge
    replay_chain_swap = replay.chain_swap
    replay_check_local = replay.check_local_gate
    replay_check_fiber = replay.check_fiber_gate
    replay_apply_swap = replay.apply_swap_gate

    for index, op in enumerate(program.operations):
        op_class = op.__class__
        if op_class is MoveOp:
            replay_move(op, index)
            moves += 1
            charge_log(move_log)
            source_zone = op.source_zone
            destination_zone = op.destination_zone
            heat[destination_zone] += move_nbar
            qubit = op.qubit
            serial_time += move_time
            start = qubit_ready_get(qubit, 0.0)
            when = zone_ready_get(source_zone, 0.0)
            if when > start:
                start = when
            when = zone_ready_get(destination_zone, 0.0)
            if when > start:
                start = when
            end = start + move_time
            qubit_ready[qubit] = end
            qubit_busy[qubit] = qubit_busy_get(qubit, 0.0) + move_time
            zone_ready[source_zone] = end
            zone_ready[destination_zone] = end
        elif op_class is GateOp:
            ions = replay_check_local(op, index)
            zone_id = op.zone
            background = -heating_rate * heat[zone_id]
            gate = op.gate
            qubits = gate.qubits
            if len(qubits) == 1:
                one_qubit_gates += 1
                charge_linear(one_qubit_fidelity)
                charge_log(background)
                serial_time += one_qubit_time
                qubit = qubits[0]
                end = qubit_ready_get(qubit, 0.0) + one_qubit_time
                qubit_ready[qubit] = end
                qubit_busy[qubit] = qubit_busy_get(qubit, 0.0) + one_qubit_time
            else:
                two_qubit_gates += 1
                fidelity = two_qubit_gate_fidelity(ions)
                if fidelity <= 0.0:
                    raise ExecutionError(
                        f"two-qubit gate fidelity collapsed to zero with "
                        f"{ions} ions in zone {zone_id}",
                        index,
                    )
                charge_linear(fidelity)
                charge_log(background)
                serial_time += two_qubit_time
                qubit_a, qubit_b = qubits
                start = qubit_ready_get(qubit_a, 0.0)
                when = qubit_ready_get(qubit_b, 0.0)
                if when > start:
                    start = when
                when = zone_ready_get(zone_id, 0.0)
                if when > start:
                    start = when
                end = start + two_qubit_time
                qubit_ready[qubit_a] = end
                qubit_busy[qubit_a] = qubit_busy_get(qubit_a, 0.0) + two_qubit_time
                qubit_ready[qubit_b] = end
                qubit_busy[qubit_b] = qubit_busy_get(qubit_b, 0.0) + two_qubit_time
                zone_ready[zone_id] = end
        elif op_class is ChainSwapOp:
            replay_chain_swap(op, index)
            chain_swaps += 1
            charge_log(chain_swap_log)
            zone_id = op.zone
            heat[zone_id] += chain_swap_nbar
            serial_time += chain_swap_time
            zone_ready[zone_id] = zone_ready_get(zone_id, 0.0) + chain_swap_time
        elif op_class is SplitOp:
            replay_split(op, index)
            splits += 1
            charge_log(split_log)
            zone_id = op.zone
            heat[zone_id] += split_nbar
            qubit = op.qubit
            serial_time += split_time
            start = qubit_ready_get(qubit, 0.0)
            when = zone_ready_get(zone_id, 0.0)
            if when > start:
                start = when
            end = start + split_time
            qubit_ready[qubit] = end
            qubit_busy[qubit] = qubit_busy_get(qubit, 0.0) + split_time
            zone_ready[zone_id] = end
        elif op_class is MergeOp:
            replay_merge(op, index)
            merges += 1
            charge_log(merge_log)
            zone_id = op.zone
            heat[zone_id] += merge_nbar
            qubit = op.qubit
            serial_time += merge_time
            start = qubit_ready_get(qubit, 0.0)
            when = zone_ready_get(zone_id, 0.0)
            if when > start:
                start = when
            end = start + merge_time
            qubit_ready[qubit] = end
            qubit_busy[qubit] = qubit_busy_get(qubit, 0.0) + merge_time
            zone_ready[zone_id] = end
        elif op_class is FiberGateOp:
            replay_check_fiber(op, index)
            fiber_gates += 1
            charge_linear(fiber_fidelity)
            zone_a = op.zone_a
            zone_b = op.zone_b
            charge_log(-heating_rate * heat[zone_a])
            charge_log(-heating_rate * heat[zone_b])
            serial_time += fiber_time
            qubit_a, qubit_b = op.gate.qubits
            start = qubit_ready_get(qubit_a, 0.0)
            when = qubit_ready_get(qubit_b, 0.0)
            if when > start:
                start = when
            when = zone_ready_get(zone_a, 0.0)
            if when > start:
                start = when
            when = zone_ready_get(zone_b, 0.0)
            if when > start:
                start = when
            end = start + fiber_time
            qubit_ready[qubit_a] = end
            qubit_busy[qubit_a] = qubit_busy_get(qubit_a, 0.0) + fiber_time
            qubit_ready[qubit_b] = end
            qubit_busy[qubit_b] = qubit_busy_get(qubit_b, 0.0) + fiber_time
            zone_ready[zone_a] = end
            zone_ready[zone_b] = end
        elif op_class is SwapGateOp:
            inserted_swaps += 1
            zone_a = op.zone_a
            zone_b = op.zone_b
            if zone_a != zone_b:  # remote swap over fiber
                remote_swaps += 1
                replay_apply_swap(op, index)
                # Three fiber-entangled MS gates (§3.3).
                for _ in range(3):
                    charge_linear(fiber_fidelity)
                    charge_log(-heating_rate * heat[zone_a])
                    charge_log(-heating_rate * heat[zone_b])
                duration = 3 * fiber_time
                zones = (zone_a, zone_b)
            else:
                ions = len(replay.chains[zone_a])
                replay_apply_swap(op, index)
                fidelity = two_qubit_gate_fidelity(ions)
                if fidelity <= 0.0:
                    raise ExecutionError(
                        f"swap fidelity collapsed to zero with {ions} ions",
                        index,
                    )
                background = -heating_rate * heat[zone_a]
                for _ in range(3):
                    charge_linear(fidelity)
                    charge_log(background)
                duration = 3 * two_qubit_time
                zones = (zone_a,)
            serial_time += duration
            qubit_a = op.qubit_a
            qubit_b = op.qubit_b
            start = qubit_ready_get(qubit_a, 0.0)
            when = qubit_ready_get(qubit_b, 0.0)
            if when > start:
                start = when
            for zone_id in zones:
                when = zone_ready_get(zone_id, 0.0)
                if when > start:
                    start = when
            end = start + duration
            qubit_ready[qubit_a] = end
            qubit_busy[qubit_a] = qubit_busy_get(qubit_a, 0.0) + duration
            qubit_ready[qubit_b] = end
            qubit_busy[qubit_b] = qubit_busy_get(qubit_b, 0.0) + duration
            for zone_id in zones:
                zone_ready[zone_id] = end
        else:
            raise ExecutionError(f"unknown operation type {type(op).__name__}", index)

    if replay.in_transit:
        raise ExecutionError(
            f"qubits left detached at end of program: {sorted(replay.in_transit)}"
        )

    makespan = max(
        max(qubit_ready.values(), default=0.0),
        max(zone_ready.values(), default=0.0),
    )
    if include_idle_decoherence:
        from ..physics import idle_log_fidelity

        for qubit in range(program.circuit.num_qubits):
            idle = makespan - qubit_busy.get(qubit, 0.0)
            if idle > 0:
                ledger.charge_log(idle_log_fidelity(idle, params))
    return ExecutionReport(
        circuit_name=program.circuit.name,
        compiler_name=program.compiler_name,
        num_qubits=program.circuit.num_qubits,
        shuttle_count=moves,
        split_count=splits,
        merge_count=merges,
        chain_swap_count=chain_swaps,
        one_qubit_gate_count=one_qubit_gates,
        two_qubit_gate_count=two_qubit_gates,
        fiber_gate_count=fiber_gates,
        inserted_swap_count=inserted_swaps,
        remote_swap_count=remote_swaps,
        execution_time_us=serial_time,
        makespan_us=makespan,
        log10_fidelity=ledger.log10_fidelity,
        zone_heat=dict(heat),
        compile_time_s=program.compile_time_s,
    )
