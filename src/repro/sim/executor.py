"""Schedule executor: prices an op stream under a physical model.

The executor replays a :class:`~repro.sim.program.Program` against the
machine, maintaining per-zone ion chains and per-zone accumulated heat,
validating every op's legality as it goes, and accumulating:

* shuttle statistics (splits, moves, merges, chain swaps),
* serial execution time (sum of op durations, the paper's time metric) and a
  resource-constrained parallel makespan,
* log-domain circuit fidelity per §4's model: Eq. 1 for trap ops, ``1-εN²``
  for local 2q gates, 0.99 for fiber gates, everything multiplied by the
  background fidelity ``B_i = exp(-k·heat_i)`` of the zone(s) involved.

Because compilers emit descriptive ops only, the same program can be
re-priced under :meth:`PhysicalParams.perfect_gate` or
:meth:`~PhysicalParams.perfect_shuttle` (Fig 13) or any capacity variant.
"""

from __future__ import annotations

from ..physics import (
    FidelityLedger,
    PhysicalParams,
    shuttle_log_fidelity,
    zone_background_log_fidelity,
)
from ..physics.timing import move_duration_us
from .metrics import ExecutionReport
from .ops import (
    ChainSwapOp,
    FiberGateOp,
    GateOp,
    MergeOp,
    MoveOp,
    Operation,
    SplitOp,
    SwapGateOp,
)
from .program import Program


class ExecutionError(RuntimeError):
    """Raised when an op is illegal for the current machine state."""

    def __init__(self, message: str, op_index: int | None = None) -> None:
        if op_index is not None:
            message = f"op #{op_index}: {message}"
        super().__init__(message)
        self.op_index = op_index


class _MachineReplay:
    """Mutable chain/transit state shared by execution and verification."""

    def __init__(self, program: Program) -> None:
        self.machine = program.machine
        self.chains: dict[int, list[int]] = {
            zone.zone_id: [] for zone in program.machine.zones
        }
        for zone_id, chain in program.initial_placement.items():
            self.chains[zone_id] = list(chain)
        self.location: dict[int, int] = {}
        for zone_id, chain in self.chains.items():
            for qubit in chain:
                self.location[qubit] = zone_id
        #: qubit -> zone it is hovering over while detached (None = in chain).
        self.in_transit: dict[int, int] = {}

    # -- shuttle ops -----------------------------------------------------

    def split(self, op: SplitOp, index: int) -> None:
        if op.qubit in self.in_transit:
            raise ExecutionError(f"qubit {op.qubit} is already detached", index)
        zone_id = self.location.get(op.qubit)
        if zone_id != op.zone:
            raise ExecutionError(
                f"qubit {op.qubit} is in zone {zone_id}, not {op.zone}", index
            )
        chain = self.chains[op.zone]
        position = chain.index(op.qubit)
        if position not in (0, len(chain) - 1):
            raise ExecutionError(
                f"qubit {op.qubit} is at interior position {position} of "
                f"zone {op.zone} (chain swaps required before split)",
                index,
            )
        chain.remove(op.qubit)
        del self.location[op.qubit]
        self.in_transit[op.qubit] = op.zone

    def move(self, op: MoveOp, index: int) -> None:
        at = self.in_transit.get(op.qubit)
        if at is None:
            raise ExecutionError(f"qubit {op.qubit} is not detached", index)
        if at != op.source_zone:
            raise ExecutionError(
                f"qubit {op.qubit} is over zone {at}, not {op.source_zone}",
                index,
            )
        if op.destination_zone not in self.machine.neighbours(op.source_zone):
            raise ExecutionError(
                f"zones {op.source_zone} and {op.destination_zone} are not "
                "shuttle-adjacent",
                index,
            )
        self.in_transit[op.qubit] = op.destination_zone

    def merge(self, op: MergeOp, index: int) -> None:
        at = self.in_transit.get(op.qubit)
        if at is None:
            raise ExecutionError(f"qubit {op.qubit} is not detached", index)
        if at != op.zone:
            raise ExecutionError(
                f"qubit {op.qubit} is over zone {at}, not {op.zone}", index
            )
        chain = self.chains[op.zone]
        zone = self.machine.zone(op.zone)
        if len(chain) >= zone.capacity:
            raise ExecutionError(
                f"zone {op.zone} is full (capacity {zone.capacity})", index
            )
        if op.side == "head":
            chain.insert(0, op.qubit)
        elif op.side == "tail":
            chain.append(op.qubit)
        else:
            raise ExecutionError(f"bad merge side {op.side!r}", index)
        del self.in_transit[op.qubit]
        self.location[op.qubit] = op.zone

    def chain_swap(self, op: ChainSwapOp, index: int) -> None:
        chain = self.chains[op.zone]
        if not 0 <= op.position < len(chain) - 1:
            raise ExecutionError(
                f"chain swap position {op.position} out of range for zone "
                f"{op.zone} (chain length {len(chain)})",
                index,
            )
        chain[op.position], chain[op.position + 1] = (
            chain[op.position + 1],
            chain[op.position],
        )

    # -- gate ops ----------------------------------------------------------

    def check_local_gate(self, op: GateOp, index: int) -> int:
        """Validate a local gate; returns ions-in-trap for fidelity."""
        zone = self.machine.zone(op.zone)
        for qubit in op.gate.qubits:
            location = self.location.get(qubit)
            if location != op.zone:
                raise ExecutionError(
                    f"gate {op.gate} expects qubit {qubit} in zone {op.zone}, "
                    f"found {location}",
                    index,
                )
        if op.gate.is_two_qubit and not zone.allows_gates:
            raise ExecutionError(
                f"zone {op.zone} ({zone.kind.value}) cannot execute two-qubit "
                f"gates",
                index,
            )
        return len(self.chains[op.zone])

    def check_fiber_gate(self, op: FiberGateOp, index: int) -> None:
        zone_a = self.machine.zone(op.zone_a)
        zone_b = self.machine.zone(op.zone_b)
        if not (zone_a.allows_fiber and zone_b.allows_fiber):
            raise ExecutionError(
                f"fiber gate needs optical zones, got {zone_a.kind.value} and "
                f"{zone_b.kind.value}",
                index,
            )
        if zone_a.module_id == zone_b.module_id:
            raise ExecutionError(
                "fiber gate endpoints must be in different modules", index
            )
        qubit_a, qubit_b = op.gate.qubits
        if self.location.get(qubit_a) != op.zone_a:
            raise ExecutionError(
                f"fiber gate expects qubit {qubit_a} in zone {op.zone_a}, "
                f"found {self.location.get(qubit_a)}",
                index,
            )
        if self.location.get(qubit_b) != op.zone_b:
            raise ExecutionError(
                f"fiber gate expects qubit {qubit_b} in zone {op.zone_b}, "
                f"found {self.location.get(qubit_b)}",
                index,
            )

    def apply_swap_gate(self, op: SwapGateOp, index: int) -> None:
        """Validate and apply a logical SWAP (exchanges chain labels)."""
        for qubit, zone_id in ((op.qubit_a, op.zone_a), (op.qubit_b, op.zone_b)):
            if self.location.get(qubit) != zone_id:
                raise ExecutionError(
                    f"swap expects qubit {qubit} in zone {zone_id}, found "
                    f"{self.location.get(qubit)}",
                    index,
                )
        if op.is_remote:
            zone_a = self.machine.zone(op.zone_a)
            zone_b = self.machine.zone(op.zone_b)
            if not (zone_a.allows_fiber and zone_b.allows_fiber):
                raise ExecutionError(
                    "remote swap endpoints must be optical zones", index
                )
            if zone_a.module_id == zone_b.module_id:
                raise ExecutionError(
                    "remote swap endpoints must be in different modules", index
                )
        else:
            if not self.machine.zone(op.zone_a).allows_gates:
                raise ExecutionError(
                    f"zone {op.zone_a} cannot execute gates", index
                )
        chain_a = self.chains[op.zone_a]
        chain_b = self.chains[op.zone_b]
        index_a = chain_a.index(op.qubit_a)
        index_b = chain_b.index(op.qubit_b)
        chain_a[index_a] = op.qubit_b
        chain_b[index_b] = op.qubit_a
        self.location[op.qubit_a] = op.zone_b
        self.location[op.qubit_b] = op.zone_a


def execute(
    program: Program,
    params: PhysicalParams | None = None,
    *,
    include_idle_decoherence: bool = False,
) -> ExecutionReport:
    """Replay and price a program; raises :class:`ExecutionError` on any
    illegal op.

    ``include_idle_decoherence`` additionally charges pure T1 decay for each
    qubit's idle time (makespan minus its busy time).  Off by default: with
    the paper's T1 = 600 s the term is negligible, and the paper's §4 model
    charges decay per operation only.
    """
    params = params or PhysicalParams()
    program.validate_placement()
    replay = _MachineReplay(program)
    ledger = FidelityLedger()
    heat: dict[int, float] = {zone.zone_id: 0.0 for zone in program.machine.zones}
    serial_time = 0.0
    # Resource-availability times for the parallel makespan: qubits and zones.
    qubit_ready: dict[int, float] = {}
    zone_ready: dict[int, float] = {}
    qubit_busy: dict[int, float] = {}

    counts = {
        "splits": 0,
        "moves": 0,
        "merges": 0,
        "chain_swaps": 0,
        "one_qubit_gates": 0,
        "two_qubit_gates": 0,
        "fiber_gates": 0,
        "inserted_swaps": 0,
        "remote_swaps": 0,
    }

    def schedule(duration: float, qubits: tuple[int, ...], zones: tuple[int, ...]) -> None:
        nonlocal serial_time
        serial_time += duration
        start = 0.0
        for qubit in qubits:
            start = max(start, qubit_ready.get(qubit, 0.0))
        for zone_id in zones:
            start = max(start, zone_ready.get(zone_id, 0.0))
        end = start + duration
        for qubit in qubits:
            qubit_ready[qubit] = end
            qubit_busy[qubit] = qubit_busy.get(qubit, 0.0) + duration
        for zone_id in zones:
            zone_ready[zone_id] = end

    def charge_trap_op(duration: float, nbar: float, heated_zone: int) -> None:
        ledger.charge_log(shuttle_log_fidelity(duration, nbar, params))
        heat[heated_zone] += nbar

    move_time = move_duration_us(params.inter_zone_distance_um, params)

    for index, op in enumerate(program.operations):
        if isinstance(op, SplitOp):
            replay.split(op, index)
            counts["splits"] += 1
            charge_trap_op(params.split_time_us, params.split_nbar, op.zone)
            schedule(params.split_time_us, (op.qubit,), (op.zone,))
        elif isinstance(op, MoveOp):
            replay.move(op, index)
            counts["moves"] += 1
            charge_trap_op(move_time, params.move_nbar, op.destination_zone)
            schedule(move_time, (op.qubit,), (op.source_zone, op.destination_zone))
        elif isinstance(op, MergeOp):
            replay.merge(op, index)
            counts["merges"] += 1
            charge_trap_op(params.merge_time_us, params.merge_nbar, op.zone)
            schedule(params.merge_time_us, (op.qubit,), (op.zone,))
        elif isinstance(op, ChainSwapOp):
            replay.chain_swap(op, index)
            counts["chain_swaps"] += 1
            charge_trap_op(
                params.chain_swap_time_us, params.chain_swap_nbar, op.zone
            )
            schedule(params.chain_swap_time_us, (), (op.zone,))
        elif isinstance(op, GateOp):
            ions = replay.check_local_gate(op, index)
            background = zone_background_log_fidelity(heat[op.zone], params)
            if op.gate.is_one_qubit:
                counts["one_qubit_gates"] += 1
                ledger.charge_linear(params.one_qubit_gate_fidelity)
                ledger.charge_log(background)
                schedule(params.one_qubit_gate_time_us, op.gate.qubits, ())
            else:
                counts["two_qubit_gates"] += 1
                fidelity = params.two_qubit_gate_fidelity(ions)
                if fidelity <= 0.0:
                    raise ExecutionError(
                        f"two-qubit gate fidelity collapsed to zero with "
                        f"{ions} ions in zone {op.zone}",
                        index,
                    )
                ledger.charge_linear(fidelity)
                ledger.charge_log(background)
                schedule(
                    params.two_qubit_gate_time_us, op.gate.qubits, (op.zone,)
                )
        elif isinstance(op, FiberGateOp):
            replay.check_fiber_gate(op, index)
            counts["fiber_gates"] += 1
            ledger.charge_linear(params.fiber_gate_fidelity)
            ledger.charge_log(zone_background_log_fidelity(heat[op.zone_a], params))
            ledger.charge_log(zone_background_log_fidelity(heat[op.zone_b], params))
            schedule(
                params.fiber_gate_time_us, op.gate.qubits, (op.zone_a, op.zone_b)
            )
        elif isinstance(op, SwapGateOp):
            counts["inserted_swaps"] += 1
            if op.is_remote:
                counts["remote_swaps"] += 1
                replay.apply_swap_gate(op, index)
                # Three fiber-entangled MS gates (§3.3).
                for _ in range(3):
                    ledger.charge_linear(params.fiber_gate_fidelity)
                    ledger.charge_log(
                        zone_background_log_fidelity(heat[op.zone_a], params)
                    )
                    ledger.charge_log(
                        zone_background_log_fidelity(heat[op.zone_b], params)
                    )
                schedule(
                    3 * params.fiber_gate_time_us,
                    (op.qubit_a, op.qubit_b),
                    (op.zone_a, op.zone_b),
                )
            else:
                ions = len(replay.chains[op.zone_a])
                replay.apply_swap_gate(op, index)
                fidelity = params.two_qubit_gate_fidelity(ions)
                if fidelity <= 0.0:
                    raise ExecutionError(
                        f"swap fidelity collapsed to zero with {ions} ions",
                        index,
                    )
                background = zone_background_log_fidelity(heat[op.zone_a], params)
                for _ in range(3):
                    ledger.charge_linear(fidelity)
                    ledger.charge_log(background)
                schedule(
                    3 * params.two_qubit_gate_time_us,
                    (op.qubit_a, op.qubit_b),
                    (op.zone_a,),
                )
        else:
            raise ExecutionError(f"unknown operation type {type(op).__name__}", index)

    if replay.in_transit:
        raise ExecutionError(
            f"qubits left detached at end of program: {sorted(replay.in_transit)}"
        )

    makespan = max(
        max(qubit_ready.values(), default=0.0),
        max(zone_ready.values(), default=0.0),
    )
    if include_idle_decoherence:
        from ..physics import idle_log_fidelity

        for qubit in range(program.circuit.num_qubits):
            idle = makespan - qubit_busy.get(qubit, 0.0)
            if idle > 0:
                ledger.charge_log(idle_log_fidelity(idle, params))
    return ExecutionReport(
        circuit_name=program.circuit.name,
        compiler_name=program.compiler_name,
        num_qubits=program.circuit.num_qubits,
        shuttle_count=counts["moves"],
        split_count=counts["splits"],
        merge_count=counts["merges"],
        chain_swap_count=counts["chain_swaps"],
        one_qubit_gate_count=counts["one_qubit_gates"],
        two_qubit_gate_count=counts["two_qubit_gates"],
        fiber_gate_count=counts["fiber_gates"],
        inserted_swap_count=counts["inserted_swaps"],
        remote_swap_count=counts["remote_swaps"],
        execution_time_us=serial_time,
        makespan_us=makespan,
        log10_fidelity=ledger.log10_fidelity,
        zone_heat=dict(heat),
        compile_time_s=program.compile_time_s,
    )
