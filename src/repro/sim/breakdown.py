"""Fidelity loss decomposition.

Splits a schedule's total log-fidelity into the model's loss channels —
the analysis behind the paper's Fig 13 discussion of *where* fidelity goes:

* ``one_qubit_gates``   — the 0.9999-per-gate cost,
* ``two_qubit_gates``   — the 1 - eps * N^2 local entangler cost,
* ``fiber_gates``       — the 0.99-per-fiber-op cost (incl. remote SWAPs),
* ``shuttle_ops``       — Eq. 1 for split/move/merge/chain-swap,
* ``background_heat``   — the B_i = exp(-k * heat) degradation of every gate.

The decomposition is a pure fold over the timed-event ledger
(:meth:`repro.sim.events.EventLedger.channels`) — the *same* charges the
executor accumulates, grouped by channel instead of summed — so the
categories sum to the executor's total by construction, not by parallel
bookkeeping.  This module carries no pricing tables of its own.
"""

from __future__ import annotations

from ..physics import PhysicalParams
from .events import CHANNELS, EventLedger, replay
from .program import Program

#: Breakdown category names, in report order (the ledger's channels).
CATEGORIES = CHANNELS


def fidelity_breakdown(
    program: Program | EventLedger, params: PhysicalParams | None = None
) -> dict[str, float]:
    """Per-category log10-fidelity contributions of a program.

    One legality-checked replay (skipped when passed an already-replayed
    :class:`~repro.sim.events.EventLedger`), then the per-channel
    pricing fold.  The values are all <= 0 and sum to the executor's
    ``log10_fidelity``.
    """
    ledger = program if isinstance(program, EventLedger) else replay(program)
    return ledger.channels(params)


def dominant_loss(breakdown: dict[str, float]) -> str:
    """The category responsible for the largest fidelity loss."""
    return min(breakdown, key=lambda category: breakdown[category])


def render_breakdown(breakdown: dict[str, float]) -> str:
    """Human-readable per-category table with percentages."""
    total = sum(breakdown.values())
    lines = ["fidelity loss by channel (log10):"]
    for category in CATEGORIES:
        value = breakdown[category]
        share = (value / total * 100.0) if total else 0.0
        lines.append(f"  {category:16s} {value:12.3f}  ({share:5.1f} %)")
    lines.append(f"  {'total':16s} {total:12.3f}")
    return "\n".join(lines)
