"""Fidelity loss decomposition.

Splits a schedule's total log-fidelity into the model's loss channels —
the analysis behind the paper's Fig 13 discussion of *where* fidelity goes:

* ``one_qubit_gates``   — the 0.9999-per-gate cost,
* ``two_qubit_gates``   — the 1 - εN² local entangler cost,
* ``fiber_gates``       — the 0.99-per-fiber-op cost (incl. remote SWAPs),
* ``shuttle_ops``       — Eq. 1 for split/move/merge/chain-swap,
* ``background_heat``   — the B_i = exp(-k·heat) degradation of every gate.

The categories sum (in log space) exactly to the executor's total, which the
test suite asserts; disagreement would mean the two models drifted apart.
"""

from __future__ import annotations

import math

from ..physics import PhysicalParams, shuttle_log_fidelity, zone_background_log_fidelity
from ..physics.timing import move_duration_us
from .ops import (
    ChainSwapOp,
    FiberGateOp,
    GateOp,
    MergeOp,
    MoveOp,
    SplitOp,
    SwapGateOp,
)
from .program import Program

_LOG10_E = math.log10(math.e)

#: Breakdown category names, in report order.
CATEGORIES = (
    "one_qubit_gates",
    "two_qubit_gates",
    "fiber_gates",
    "shuttle_ops",
    "background_heat",
)


def fidelity_breakdown(
    program: Program, params: PhysicalParams | None = None
) -> dict[str, float]:
    """Per-category log10-fidelity contributions of a program.

    Replays the same pricing the executor applies, attributing each charge
    to one of :data:`CATEGORIES`.  The values are all <= 0 and sum to the
    executor's ``log10_fidelity``.
    """
    params = params or PhysicalParams()
    move_time = move_duration_us(params.inter_zone_distance_um, params)
    heat: dict[int, float] = {zone.zone_id: 0.0 for zone in program.machine.zones}
    sizes: dict[int, int] = {
        zone.zone_id: len(program.initial_placement.get(zone.zone_id, ()))
        for zone in program.machine.zones
    }
    totals = {category: 0.0 for category in CATEGORIES}

    def charge(category: str, natural_log: float) -> None:
        totals[category] += natural_log

    def trap_op(duration: float, nbar: float, heated_zone: int) -> None:
        charge("shuttle_ops", shuttle_log_fidelity(duration, nbar, params))
        heat[heated_zone] += nbar

    def background(zone_id: int) -> None:
        charge(
            "background_heat",
            zone_background_log_fidelity(heat[zone_id], params),
        )

    for op in program.operations:
        if isinstance(op, SplitOp):
            trap_op(params.split_time_us, params.split_nbar, op.zone)
            sizes[op.zone] -= 1
        elif isinstance(op, MoveOp):
            trap_op(move_time, params.move_nbar, op.destination_zone)
        elif isinstance(op, MergeOp):
            trap_op(params.merge_time_us, params.merge_nbar, op.zone)
            sizes[op.zone] += 1
        elif isinstance(op, ChainSwapOp):
            trap_op(params.chain_swap_time_us, params.chain_swap_nbar, op.zone)
        elif isinstance(op, GateOp):
            if op.gate.is_one_qubit:
                charge("one_qubit_gates", math.log(params.one_qubit_gate_fidelity))
            else:
                charge(
                    "two_qubit_gates",
                    math.log(params.two_qubit_gate_fidelity(sizes[op.zone])),
                )
            background(op.zone)
        elif isinstance(op, FiberGateOp):
            charge("fiber_gates", math.log(params.fiber_gate_fidelity))
            background(op.zone_a)
            background(op.zone_b)
        elif isinstance(op, SwapGateOp):
            if op.is_remote:
                for _ in range(3):
                    charge("fiber_gates", math.log(params.fiber_gate_fidelity))
                    background(op.zone_a)
                    background(op.zone_b)
            else:
                fidelity = params.two_qubit_gate_fidelity(sizes[op.zone_a])
                for _ in range(3):
                    charge("two_qubit_gates", math.log(fidelity))
                    background(op.zone_a)
        else:
            raise TypeError(f"unknown op type {type(op).__name__}")

    return {category: value * _LOG10_E for category, value in totals.items()}


def dominant_loss(breakdown: dict[str, float]) -> str:
    """The category responsible for the largest fidelity loss."""
    return min(breakdown, key=lambda category: breakdown[category])


def render_breakdown(breakdown: dict[str, float]) -> str:
    """Human-readable per-category table with percentages."""
    total = sum(breakdown.values())
    lines = ["fidelity loss by channel (log10):"]
    for category in CATEGORIES:
        value = breakdown[category]
        share = (value / total * 100.0) if total else 0.0
        lines.append(f"  {category:16s} {value:12.3f}  ({share:5.1f} %)")
    lines.append(f"  {'total':16s} {total:12.3f}")
    return "\n".join(lines)
