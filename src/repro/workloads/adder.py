"""Cuccaro ripple-carry adder.

The in-place majority/unmajority adder of Cuccaro et al. (quant-ph/0410184).
The register layout is ``[carry_in, b0, a0, b1, a1, ..., carry_out]``: adding
two k-bit numbers uses ``2k + 2`` qubits.  MAJ/UMA blocks walk the register
linearly but each block touches a 3-qubit window, producing the
medium-locality, high-gate-count behaviour the paper's Adder workloads show
(Adder_32 has hundreds of CX after Toffoli decomposition, and is
shuttle-hungry under naive scheduling: 73-187 shuttles in Table 2 versus
MUSS-TI's 7).
"""

from __future__ import annotations

from ..circuits import QuantumCircuit, lower_to_native


def _maj(circuit: QuantumCircuit, c: int, b: int, a: int) -> None:
    """Majority block: (c, b, a) -> (c XOR a, b XOR a, MAJ(a, b, c))."""
    circuit.cx(a, b)
    circuit.cx(a, c)
    circuit.ccx(c, b, a)


def _uma(circuit: QuantumCircuit, c: int, b: int, a: int) -> None:
    """Un-majority-and-add block, inverse companion of :func:`_maj`."""
    circuit.ccx(c, b, a)
    circuit.cx(a, c)
    circuit.cx(c, b)


def cuccaro_adder(num_qubits: int, *, decompose: bool = True) -> QuantumCircuit:
    """Build a ripple-carry adder using ``num_qubits`` wires.

    The largest k with ``2k + 2 <= num_qubits`` is used for the addition;
    leftover wires (at most one) are padded with an initial X so every wire
    participates in the circuit footprint.

    Args:
        num_qubits: total register width (>= 4).
        decompose: lower Toffolis to the native 1q/2q set (default), matching
            what the schedulers consume.
    """
    if num_qubits < 4:
        raise ValueError(f"adder needs at least 4 qubits, got {num_qubits}")
    bits = (num_qubits - 2) // 2
    circuit = QuantumCircuit(num_qubits, name=f"Adder_n{num_qubits}")

    carry_in = 0
    carry_out = 2 * bits + 1

    def b_wire(i: int) -> int:
        return 1 + 2 * i

    def a_wire(i: int) -> int:
        return 2 + 2 * i

    # Classical test vector: a = 0101..., b = 1111... keeps the adder
    # semantically meaningful while exercising every wire.
    for i in range(bits):
        circuit.x(b_wire(i))
        if i % 2 == 0:
            circuit.x(a_wire(i))
    for wire in range(2 * bits + 2, num_qubits):
        circuit.x(wire)

    # Ripple the carry up with MAJ blocks.
    _maj(circuit, carry_in, b_wire(0), a_wire(0))
    for i in range(1, bits):
        _maj(circuit, a_wire(i - 1), b_wire(i), a_wire(i))
    # Copy the final carry.
    circuit.cx(a_wire(bits - 1), carry_out)
    # Unwind with UMA blocks.
    for i in range(bits - 1, 0, -1):
        _uma(circuit, a_wire(i - 1), b_wire(i), a_wire(i))
    _uma(circuit, carry_in, b_wire(0), a_wire(0))

    for i in range(bits):
        circuit.measure(b_wire(i))
    circuit.measure(carry_out)

    if decompose:
        return lower_to_native(circuit)
    return circuit
