"""SQRT: Grover-style square-root extraction (QASMBench family).

QASMBench's ``square_root`` benchmark computes sqrt(a) via Grover search with
an arithmetic oracle.  Structurally it is rounds of (oracle over the full
register) + (diffuser over the search register): partial-product ladders and
multi-controlled phases whose CCX decompositions march a hot 3-wire window
across the whole register, reusing shared ancillas throughout.  That makes
SQRT the most communication-intensive workload in the paper — the one on
which MUSS-TI's shuttle reduction exceeds 90 % (§5.2): the working set walks
and any scheduler without reuse awareness ping-pongs ions continuously.

Wire layout matters: like the QASMBench originals, the three registers are
*interleaved* (search, work, ancilla repeating), so arithmetic neighbours
are physical neighbours and the communication pressure comes from the
walking/reused window, not from an artificial scattering of registers.
"""

from __future__ import annotations

from ..circuits import QuantumCircuit, lower_to_native


def _multi_controlled_z(
    circuit: QuantumCircuit, controls: list[int], target: int, ancillas: list[int]
) -> None:
    """Ladder decomposition of a multi-controlled Z using CCX and ancillas.

    ``ancillas[i]`` is consumed alongside ``controls[i + 2]``; keeping the
    two lists aligned keeps every CCX inside a short wire window when the
    registers are interleaved.
    """
    if not controls:
        circuit.z(target)
        return
    if len(controls) == 1:
        circuit.cz(controls[0], target)
        return
    if len(controls) == 2:
        circuit.h(target)
        circuit.ccx(controls[0], controls[1], target)
        circuit.h(target)
        return
    needed = len(controls) - 2
    if len(ancillas) < needed:
        raise ValueError(
            f"need {needed} ancillas for {len(controls)} controls, "
            f"got {len(ancillas)}"
        )
    chain = ancillas[:needed]
    circuit.ccx(controls[0], controls[1], chain[0])
    for i in range(2, len(controls) - 1):
        circuit.ccx(controls[i], chain[i - 2], chain[i - 1])
    circuit.h(target)
    circuit.ccx(controls[-1], chain[-1], target)
    circuit.h(target)
    for i in range(len(controls) - 2, 1, -1):
        circuit.ccx(controls[i], chain[i - 2], chain[i - 1])
    circuit.ccx(controls[0], controls[1], chain[0])


def _oracle(
    circuit: QuantumCircuit,
    search: list[int],
    work: list[int],
    ancillas: list[int],
) -> None:
    """Squaring-comparison oracle sketch: couple search and work registers.

    A partial-product ladder (CCX from adjacent search-bit pairs into the
    matching work bits) followed by a multi-controlled phase over the work
    register reproduces the reuse-heavy traffic of the real arithmetic
    oracle.
    """
    n = len(search)
    w = len(work)

    def partial_products(reverse: bool) -> None:
        indices = range(n - 1, -1, -1) if reverse else range(n)
        for i in indices:
            circuit.cx(search[i], work[min(i, w - 1)])
            if i + 1 < n:
                circuit.ccx(search[i], search[i + 1], work[min(i + 1, w - 1)])

    partial_products(reverse=False)
    _multi_controlled_z(circuit, work, search[0], ancillas)
    partial_products(reverse=True)  # uncompute


def _diffuser(
    circuit: QuantumCircuit, search: list[int], ancillas: list[int]
) -> None:
    """Standard Grover diffuser on the search register."""
    for q in search:
        circuit.h(q)
        circuit.x(q)
    _multi_controlled_z(circuit, search[:-1], search[-1], ancillas)
    for q in search:
        circuit.x(q)
        circuit.h(q)


def _interleaved_registers(num_qubits: int) -> tuple[list[int], list[int], list[int]]:
    """Assign wires in a repeating (search, work, ancilla) pattern.

    The 1:1:1 ratio gives every MCZ ladder enough ancillas (a ladder over
    ``m`` controls needs ``m - 2``) while keeping each ladder step inside a
    six-wire window.
    """
    search: list[int] = []
    work: list[int] = []
    ancillas: list[int] = []
    buckets = (search, work, ancillas)
    for wire in range(num_qubits):
        buckets[wire % 3].append(wire)
    return search, work, ancillas


def sqrt_circuit(
    num_qubits: int, rounds: int | None = None, *, decompose: bool = True
) -> QuantumCircuit:
    """Build a Grover-style SQRT benchmark on ``num_qubits`` wires.

    ``rounds`` defaults to 2 (1 beyond 200 qubits), matching the gate-count
    scale of the paper's suite (31-4376 two-qubit gates).
    """
    if num_qubits < 10:
        raise ValueError(f"SQRT needs at least 10 qubits, got {num_qubits}")
    if rounds is None:
        rounds = 1 if num_qubits > 200 else 2
    search, work, ancillas = _interleaved_registers(num_qubits)

    circuit = QuantumCircuit(num_qubits, name=f"SQRT_n{num_qubits}")
    for q in search:
        circuit.h(q)
    for _ in range(rounds):
        _oracle(circuit, search, work, ancillas)
        _diffuser(circuit, search, ancillas)
    for q in search:
        circuit.measure(q)

    if decompose:
        return lower_to_native(circuit)
    return circuit
