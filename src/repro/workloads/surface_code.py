"""Surface-code stabiliser cycle workload (the paper's §7 outlook).

The paper's conclusion names quantum error correction as the next step for
EML-QCCD compilation.  This generator produces one syndrome-extraction cycle
of the rotated surface code: a distance-``d`` grid of ``d*d`` data qubits
plus ``d*d - 1`` measure qubits, each ancilla entangled with its 2-4 data
neighbours in the standard four-phase schedule (NW, NE, SW, SE), with the
Hadamard dressing for X-type stabilisers and final ancilla measurement.

Communication structure: strictly 2-D local, but every data qubit is touched
by up to four ancillas per cycle — a dense, repeating working set that makes
surface-code cycles an interesting stress case for zone scheduling.
"""

from __future__ import annotations

from ..circuits import QuantumCircuit


def _rotated_surface_code_layout(distance: int):
    """Data qubit grid positions and stabiliser ancilla descriptors.

    Returns ``(data_index, stabilisers)`` where ``data_index[(r, c)]`` maps
    grid position to wire, and each stabiliser is ``(kind, [data wires])``
    in NW/NE/SW/SE order (kind is ``"x"`` or ``"z"``).
    """
    data_index = {
        (row, col): row * distance + col
        for row in range(distance)
        for col in range(distance)
    }
    stabilisers: list[tuple[str, list[int]]] = []
    # Ancillas sit on the corners of the data grid's dual lattice: positions
    # (r + 0.5, c + 0.5) for r, c in -1..d-1, filtered by the rotated-code
    # boundary rules. We enumerate them via integer corner coordinates.
    for row in range(-1, distance):
        for col in range(-1, distance):
            neighbours = [
                (row, col),
                (row, col + 1),
                (row + 1, col),
                (row + 1, col + 1),
            ]
            present = [
                data_index[pos] for pos in neighbours if pos in data_index
            ]
            if len(present) < 2:
                continue
            is_x = (row + col) % 2 == 0
            # Rotated-code boundary: X stabilisers live on top/bottom rims,
            # Z on left/right rims; interior squares alternate.
            if len(present) == 2:
                if is_x and row not in (-1, distance - 1):
                    continue
                if not is_x and col not in (-1, distance - 1):
                    continue
            stabilisers.append(("x" if is_x else "z", present))
    return data_index, stabilisers


def surface_code_cycle(
    distance: int = 3, rounds: int = 1, *, num_qubits: int | None = None
) -> QuantumCircuit:
    """One or more syndrome-extraction cycles of a rotated surface code.

    Args:
        distance: code distance (odd, >= 3).
        rounds: repeated stabiliser-measurement cycles.
        num_qubits: optional total width override used by the registry
            (chooses the largest odd distance whose code fits).
    """
    if num_qubits is not None:
        distance = 3
        while (distance + 2) ** 2 * 2 - 1 <= num_qubits:
            distance += 2
    if distance < 3 or distance % 2 == 0:
        raise ValueError(f"distance must be odd and >= 3, got {distance}")
    if rounds < 1:
        raise ValueError(f"rounds must be positive, got {rounds}")

    data_index, stabilisers = _rotated_surface_code_layout(distance)
    num_data = distance * distance
    total = num_data + len(stabilisers)
    circuit = QuantumCircuit(total, name=f"Surface_d{distance}")

    for cycle in range(rounds):
        for offset, (kind, _) in enumerate(stabilisers):
            if kind == "x":
                circuit.h(num_data + offset)
        # Four interaction phases: the i-th neighbour of every stabiliser.
        for phase in range(4):
            for offset, (kind, data_wires) in enumerate(stabilisers):
                if phase >= len(data_wires):
                    continue
                ancilla = num_data + offset
                data = data_wires[phase]
                if kind == "x":
                    circuit.cx(ancilla, data)
                else:
                    circuit.cx(data, ancilla)
        for offset, (kind, _) in enumerate(stabilisers):
            ancilla = num_data + offset
            if kind == "x":
                circuit.h(ancilla)
            circuit.measure(ancilla)
            if cycle + 1 < rounds:
                circuit.add("reset", ancilla)
    return circuit
