"""Workload registry: benchmark circuits by paper-style name.

The paper names workloads like ``Adder_n128``, ``SQRT_n299``, ``RAN_n256``.
:func:`get_benchmark` resolves those names, and the ``*_SUITE`` constants
reproduce the exact application sets of Table 2 and Figure 6.
"""

from __future__ import annotations

import re
from collections.abc import Callable

from ..circuits import QuantumCircuit, lower_to_native
from .adder import cuccaro_adder
from .bv import bernstein_vazirani
from .extras import hidden_shift, ising, quantum_volume
from .ghz import ghz
from .qaoa import qaoa_ring
from .qft import qft
from .random_circuits import random_circuit, supremacy_circuit
from .sqrt import sqrt_circuit
from .surface_code import surface_code_cycle

#: family name (lower case) -> generator taking num_qubits.
GENERATORS: dict[str, Callable[[int], QuantumCircuit]] = {
    "adder": cuccaro_adder,
    "bv": bernstein_vazirani,
    "ghz": ghz,
    "qaoa": qaoa_ring,
    "qft": qft,
    "sqrt": sqrt_circuit,
    "ran": random_circuit,
    "random": random_circuit,
    "sc": supremacy_circuit,
    # Extended families beyond the paper's suite (QASMBench-style).
    "qv": quantum_volume,
    "ising": ising,
    "hs": hidden_shift,
    # §7 outlook: QEC syndrome extraction on EML-QCCD.
    "surface": lambda n: surface_code_cycle(num_qubits=n),
}

_NAME_RE = re.compile(r"([a-zA-Z]+)_n?(\d+)")

#: Table 2 / Fig 6 small-scale suite (30-32 qubits).
SMALL_SUITE = ("Adder_n32", "BV_n32", "GHZ_n32", "QAOA_n32", "QFT_n32", "SQRT_n30")

#: Fig 6 medium-scale suite (117-128 qubits).
MEDIUM_SUITE = ("Adder_n128", "BV_n128", "QAOA_n128", "GHZ_n128", "SQRT_n117")

#: Fig 6 large-scale suite (256-299 qubits).
LARGE_SUITE = (
    "Adder_n256",
    "BV_n256",
    "QAOA_n256",
    "GHZ_n256",
    "RAN_n256",
    "SC_n274",
    "SQRT_n299",
)


def parse_name(name: str) -> tuple[str, int]:
    """Split ``"Adder_n128"`` into ``("adder", 128)``."""
    match = _NAME_RE.fullmatch(name.strip())
    if match is None:
        raise KeyError(f"cannot parse benchmark name {name!r}")
    family, size_text = match.groups()
    family = family.lower()
    if family not in GENERATORS:
        raise KeyError(
            f"unknown benchmark family {family!r}; known: {sorted(GENERATORS)}"
        )
    return family, int(size_text)


def get_benchmark(name: str, *, native: bool = True) -> QuantumCircuit:
    """Build the benchmark circuit named like the paper names it.

    Args:
        name: e.g. ``"Adder_n128"``, ``"SQRT_n299"``, ``"RAN_n256"``.
        native: lower to 1q/2q gates and drop measure/barrier markers,
            producing exactly what the schedulers consume (default).
    """
    family, num_qubits = parse_name(name)
    circuit = GENERATORS[family](num_qubits)
    if native:
        circuit = lower_to_native(circuit).without_non_unitary()
    return circuit


def available_benchmarks() -> list[str]:
    """Every canonical suite entry, smallest scale first."""
    return list(SMALL_SUITE) + list(MEDIUM_SUITE) + list(LARGE_SUITE)
