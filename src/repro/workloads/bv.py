"""Bernstein–Vazirani algorithm.

The oracle for secret string ``s`` applies CX(q_i, ancilla) for each set bit.
All two-qubit gates share the single ancilla target — a star-shaped
communication pattern.  With the ancilla pinned in an operation zone the
circuit needs almost no shuttles, which is why BV is among the
highest-fidelity entries in Table 2.
"""

from __future__ import annotations

from ..circuits import QuantumCircuit


def bernstein_vazirani(num_qubits: int, secret: int | None = None) -> QuantumCircuit:
    """Build a BV circuit on ``num_qubits`` wires (last wire is the ancilla).

    Args:
        num_qubits: total qubits including the ancilla.
        secret: the hidden bit string over ``num_qubits - 1`` data qubits;
            defaults to all ones (the worst case, maximising CX count and
            matching QASMBench's convention).
    """
    if num_qubits < 2:
        raise ValueError(f"BV needs at least 2 qubits, got {num_qubits}")
    data_qubits = num_qubits - 1
    if secret is None:
        secret = (1 << data_qubits) - 1
    if secret < 0 or secret >= (1 << data_qubits):
        raise ValueError(f"secret {secret:#x} does not fit {data_qubits} bits")

    circuit = QuantumCircuit(num_qubits, name=f"BV_n{num_qubits}")
    ancilla = num_qubits - 1
    # |-> on the ancilla, |+> on the data register.
    circuit.x(ancilla)
    for q in range(num_qubits):
        circuit.h(q)
    # Oracle: phase kickback through CX onto the ancilla.
    for q in range(data_qubits):
        if (secret >> q) & 1:
            circuit.cx(q, ancilla)
    # Uncompute the superposition and read out.
    for q in range(data_qubits):
        circuit.h(q)
    for q in range(data_qubits):
        circuit.measure(q)
    return circuit
