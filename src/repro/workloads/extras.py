"""Additional QASMBench-style workload families.

Beyond the paper's eight applications, three families commonly used to
stress NISQ compilers (all present in QASMBench and trivially available to
downstream users of this repository):

* :func:`quantum_volume` — square random SU(4)-style circuits (QV): random
  pairings each layer, the classic all-to-all stress test.
* :func:`ising` — first-order Trotterised transverse-field Ising evolution:
  nearest-neighbour ZZ + transverse RX per step (Hamiltonian simulation).
* :func:`hidden_shift` — the bent-function hidden-shift circuit: Hadamard
  sandwich around a CZ product function, with a shifted-phase oracle.
"""

from __future__ import annotations

import math

from ..circuits import QuantumCircuit
from .random_circuits import _XorShift


def quantum_volume(num_qubits: int, depth: int | None = None, seed: int = 42) -> QuantumCircuit:
    """Quantum-volume style circuit: ``depth`` layers of random pairings.

    Each layer shuffles the qubits, pairs them up, and applies a random
    SU(4) proxy (two CX with interleaved random 1q rotations) to every pair.
    ``depth`` defaults to ``num_qubits`` (the square QV shape).
    """
    if num_qubits < 2:
        raise ValueError(f"QV needs at least 2 qubits, got {num_qubits}")
    if depth is None:
        depth = num_qubits
    if depth < 1:
        raise ValueError(f"depth must be positive, got {depth}")
    rng = _XorShift(seed)
    circuit = QuantumCircuit(num_qubits, name=f"QV_n{num_qubits}")
    for _ in range(depth):
        order = list(range(num_qubits))
        # Fisher-Yates with the deterministic PRNG.
        for i in range(num_qubits - 1, 0, -1):
            j = rng.next_int(i + 1)
            order[i], order[j] = order[j], order[i]
        for i in range(0, num_qubits - 1, 2):
            a, b = order[i], order[i + 1]
            circuit.ry(rng.next_angle(), a)
            circuit.rz(rng.next_angle(), b)
            circuit.cx(a, b)
            circuit.ry(rng.next_angle(), b)
            circuit.cx(b, a)
            circuit.rz(rng.next_angle(), a)
    return circuit


def ising(
    num_qubits: int,
    steps: int = 4,
    coupling: float = 1.0,
    field: float = 0.7,
    dt: float = 0.1,
) -> QuantumCircuit:
    """First-order Trotterised 1-D transverse-field Ising evolution.

    Per step: ``exp(-i J dt Z_i Z_{i+1})`` on every chain edge (even bonds
    then odd bonds, enabling layer parallelism) followed by
    ``exp(-i h dt X_i)`` everywhere.  Pure nearest-neighbour traffic — a
    natural companion to QAOA in locality studies.
    """
    if num_qubits < 2:
        raise ValueError(f"Ising needs at least 2 qubits, got {num_qubits}")
    if steps < 1:
        raise ValueError(f"steps must be positive, got {steps}")
    circuit = QuantumCircuit(num_qubits, name=f"Ising_n{num_qubits}")
    zz_angle = 2.0 * coupling * dt
    x_angle = 2.0 * field * dt
    for q in range(num_qubits):
        circuit.h(q)
    for _ in range(steps):
        for parity in (0, 1):
            for q in range(parity, num_qubits - 1, 2):
                circuit.rzz(zz_angle, q, q + 1)
        for q in range(num_qubits):
            circuit.rx(x_angle, q)
    return circuit


def hidden_shift(num_qubits: int, shift: int | None = None) -> QuantumCircuit:
    """Hidden-shift circuit for the inner-product bent function.

    The self-dual bent function ``f(x, y) = x . y`` (CZ between the two
    register halves) sandwiched in Hadamard layers, with the shifted oracle
    realised by X-conjugation:

        H^n  ->  X_s f X_s  ->  H^n  ->  f  ->  H^n  ->  measure

    Measurement reveals the shift exactly.  Communication pattern: disjoint
    mid-range CZ pairs — between GHZ's chain and QFT's all-to-all.
    """
    if num_qubits < 4:
        raise ValueError(f"hidden shift needs at least 4 qubits, got {num_qubits}")
    if num_qubits % 2:
        raise ValueError(f"hidden shift needs an even width, got {num_qubits}")
    if shift is None:
        shift = (1 << num_qubits) - 1
    if not 0 <= shift < (1 << num_qubits):
        raise ValueError(f"shift {shift:#x} does not fit {num_qubits} bits")
    half = num_qubits // 2
    circuit = QuantumCircuit(num_qubits, name=f"HS_n{num_qubits}")

    def apply_f() -> None:
        for left in range(half):
            circuit.cz(left, half + left)

    def apply_shift() -> None:
        for q in range(num_qubits):
            if (shift >> q) & 1:
                circuit.x(q)

    for q in range(num_qubits):
        circuit.h(q)
    apply_shift()
    apply_f()
    apply_shift()
    for q in range(num_qubits):
        circuit.h(q)
    apply_f()
    for q in range(num_qubits):
        circuit.h(q)
    for q in range(num_qubits):
        circuit.measure(q)
    return circuit
