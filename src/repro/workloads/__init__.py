"""Benchmark workload generators (the paper's application suite).

Families: Adder (Cuccaro ripple-carry), BV (Bernstein–Vazirani), GHZ, QAOA
(ring MaxCut), QFT, SQRT (Grover-style square root), RAN (unstructured
random) and SC (supremacy-style 2D grid).  Resolve paper-style names with
:func:`get_benchmark`.
"""

from .adder import cuccaro_adder
from .bv import bernstein_vazirani
from .extras import hidden_shift, ising, quantum_volume
from .ghz import ghz
from .qaoa import qaoa_ring
from .qft import qft
from .random_circuits import random_circuit, supremacy_circuit
from .registry import (
    GENERATORS,
    LARGE_SUITE,
    MEDIUM_SUITE,
    SMALL_SUITE,
    available_benchmarks,
    get_benchmark,
    parse_name,
)
from .sqrt import sqrt_circuit
from .surface_code import surface_code_cycle

__all__ = [
    "GENERATORS",
    "LARGE_SUITE",
    "MEDIUM_SUITE",
    "SMALL_SUITE",
    "available_benchmarks",
    "bernstein_vazirani",
    "cuccaro_adder",
    "get_benchmark",
    "ghz",
    "hidden_shift",
    "ising",
    "parse_name",
    "qaoa_ring",
    "qft",
    "quantum_volume",
    "random_circuit",
    "sqrt_circuit",
    "supremacy_circuit",
    "surface_code_cycle",
]
