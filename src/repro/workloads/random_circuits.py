"""Random circuit workloads: RAN (unstructured) and SC (supremacy-style).

``RAN_n256`` in the paper is an unstructured random circuit — uniformly
random two-qubit partners, the adversarial case for any locality-exploiting
scheduler.  ``SC_n274`` is a quantum-supremacy-style circuit: a 2D grid of
qubits entangled along grid edges in a rotating pattern (the Google-style
patterned coupler activation), which has strong 2D locality.

Both use an explicit xorshift PRNG rather than :mod:`random` so circuits are
reproducible across Python versions.
"""

from __future__ import annotations

import math

from ..circuits import QuantumCircuit


class _XorShift:
    """Deterministic 64-bit xorshift PRNG (reproducible across platforms)."""

    def __init__(self, seed: int) -> None:
        self.state = (seed ^ 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF or 1

    def next_int(self, bound: int) -> int:
        x = self.state
        x ^= (x << 13) & 0xFFFFFFFFFFFFFFFF
        x ^= x >> 7
        x ^= (x << 17) & 0xFFFFFFFFFFFFFFFF
        self.state = x
        return x % bound

    def next_angle(self) -> float:
        return math.pi * self.next_int(1 << 20) / (1 << 20)


def random_circuit(
    num_qubits: int,
    num_two_qubit_gates: int | None = None,
    seed: int = 2025,
) -> QuantumCircuit:
    """Unstructured random circuit (the paper's RAN workload).

    Args:
        num_qubits: register width.
        num_two_qubit_gates: number of CX gates; defaults to ``4 * n``,
            matching the gate-count scale of the paper's RAN_n256 entry.
        seed: PRNG seed.
    """
    if num_qubits < 2:
        raise ValueError(f"random circuit needs >= 2 qubits, got {num_qubits}")
    if num_two_qubit_gates is None:
        num_two_qubit_gates = 4 * num_qubits
    rng = _XorShift(seed)
    circuit = QuantumCircuit(num_qubits, name=f"RAN_n{num_qubits}")
    for q in range(num_qubits):
        circuit.h(q)
    for _ in range(num_two_qubit_gates):
        a = rng.next_int(num_qubits)
        b = rng.next_int(num_qubits - 1)
        if b >= a:
            b += 1
        # Sprinkle 1q rotations so the DAG has realistic layer structure.
        if rng.next_int(4) == 0:
            circuit.rz(rng.next_angle(), a)
        circuit.cx(a, b)
    return circuit


#: The supremacy coupler-activation pattern: each entry selects grid edges by
#: (horizontal?, parity) as in Google-style patterned activation.
_SC_PATTERN = (
    (True, 0), (False, 0), (True, 1), (False, 1),
    (False, 0), (True, 0), (False, 1), (True, 1),
)


def supremacy_circuit(
    num_qubits: int, depth: int = 8, seed: int = 274
) -> QuantumCircuit:
    """2D-grid supremacy-style circuit (the paper's SC workload).

    Qubits sit on a near-square grid; each layer applies random single-qubit
    rotations everywhere and CZ along one activation pattern of grid edges.

    Args:
        num_qubits: grid size (need not be a perfect rectangle; the last row
            may be ragged).
        depth: number of entangling layers.
        seed: PRNG seed for the single-qubit gate choices.
    """
    if num_qubits < 4:
        raise ValueError(f"supremacy circuit needs >= 4 qubits, got {num_qubits}")
    columns = max(2, int(math.sqrt(num_qubits)))
    rng = _XorShift(seed)
    circuit = QuantumCircuit(num_qubits, name=f"SC_n{num_qubits}")

    def wire(row: int, col: int) -> int:
        return row * columns + col

    rows = (num_qubits + columns - 1) // columns
    one_qubit_choices = ("sx", "t", "h")

    for q in range(num_qubits):
        circuit.h(q)
    for layer in range(depth):
        for q in range(num_qubits):
            circuit.add(one_qubit_choices[rng.next_int(3)], q)
        horizontal, parity = _SC_PATTERN[layer % len(_SC_PATTERN)]
        for row in range(rows):
            for col in range(columns):
                a = wire(row, col)
                if a >= num_qubits:
                    continue
                if horizontal:
                    if col % 2 == parity and col + 1 < columns:
                        b = wire(row, col + 1)
                        if b < num_qubits:
                            circuit.cz(a, b)
                else:
                    if row % 2 == parity:
                        b = wire(row + 1, col)
                        if b < num_qubits:
                            circuit.cz(a, b)
    return circuit
