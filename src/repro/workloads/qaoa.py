"""QAOA for MaxCut on a ring.

The paper characterises QAOA as a nearest-neighbour, low-communication
application ("the benefit is less significant", §5.2; "essentially unaffected
by changes in k", §5.5).  MaxCut on a ring graph captures exactly that: each
qubit couples only with its two ring neighbours, so ZZ interactions are local
under any block-contiguous initial mapping.
"""

from __future__ import annotations

import math

from ..circuits import QuantumCircuit


def qaoa_ring(num_qubits: int, rounds: int = 1, seed: int = 7) -> QuantumCircuit:
    """Build a ``rounds``-round QAOA MaxCut circuit on a ring graph.

    Angles are deterministic pseudo-random values derived from ``seed`` so the
    circuit is reproducible without an optimisation loop (scheduling is
    insensitive to the specific angles).
    """
    if num_qubits < 3:
        raise ValueError(f"ring QAOA needs at least 3 qubits, got {num_qubits}")
    if rounds < 1:
        raise ValueError(f"rounds must be positive, got {rounds}")
    circuit = QuantumCircuit(num_qubits, name=f"QAOA_n{num_qubits}")
    for q in range(num_qubits):
        circuit.h(q)
    state = seed & 0x7FFFFFFF or 1
    for layer in range(rounds):
        # Cost layer: ZZ on every ring edge, even edges first then odd so
        # neighbouring interactions can be scheduled in two parallel waves.
        edges = [(q, (q + 1) % num_qubits) for q in range(num_qubits)]
        state = (1103515245 * state + 12345) % (1 << 31)
        gamma = math.pi * state / (1 << 31)
        for a, b in edges:
            circuit.rzz(gamma, a, b)
        # Mixer layer.
        state = (1103515245 * state + 12345) % (1 << 31)
        beta = math.pi * state / (1 << 31)
        for q in range(num_qubits):
            circuit.rx(beta, q)
    return circuit
