"""Quantum Fourier transform.

The textbook QFT applies controlled-phase gates between every qubit pair —
an all-to-all communication pattern and the heaviest two-qubit gate count in
the suite (n(n-1)/2 CP gates plus the final reversal SWAPs).  The paper omits
QFT fidelity beyond n=32 because it underflows double precision; our
log-domain ledger still reports it.
"""

from __future__ import annotations

import math

from ..circuits import QuantumCircuit


def qft(num_qubits: int, *, include_swaps: bool = True) -> QuantumCircuit:
    """Build the ``num_qubits``-qubit QFT.

    Args:
        num_qubits: register width.
        include_swaps: append the qubit-reversal SWAP network (default true,
            matching QASMBench's qft circuits).
    """
    if num_qubits < 1:
        raise ValueError(f"QFT needs at least 1 qubit, got {num_qubits}")
    circuit = QuantumCircuit(num_qubits, name=f"QFT_n{num_qubits}")
    # Process from the most significant qubit down (qubit 0 is the least
    # significant bit); with the final swap reversal this is exactly the
    # DFT matrix on computational-basis indices.
    for target in range(num_qubits - 1, -1, -1):
        circuit.h(target)
        for control in range(target - 1, -1, -1):
            angle = math.pi / (2 ** (target - control))
            circuit.cp(angle, control, target)
    if include_swaps:
        for q in range(num_qubits // 2):
            circuit.swap(q, num_qubits - 1 - q)
    return circuit
