"""GHZ state preparation.

A Hadamard on qubit 0 followed by a CX chain.  The linear chain makes GHZ the
lightest communication pattern in the suite: each qubit interacts with only
its immediate successor, so good schedulers need very few shuttles
(Table 2 reports 2-4 for GHZ_32).
"""

from __future__ import annotations

from ..circuits import QuantumCircuit


def ghz(num_qubits: int) -> QuantumCircuit:
    """Build the ``num_qubits``-qubit GHZ preparation circuit."""
    if num_qubits < 2:
        raise ValueError(f"GHZ needs at least 2 qubits, got {num_qubits}")
    circuit = QuantumCircuit(num_qubits, name=f"GHZ_n{num_qubits}")
    circuit.h(0)
    for q in range(num_qubits - 1):
        circuit.cx(q, q + 1)
    return circuit
