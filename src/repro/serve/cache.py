"""Two-tier content-addressed result cache of the compilation service.

Tier 1 is a byte- and entry-bounded in-memory LRU holding the canonical
JSON encoding of each job result; tier 2 is the same on-disk
``~/.cache/repro-bench`` store the sweep engine uses
(:class:`repro.bench.cache.ResultCache`, experiment name ``"serve"``),
so service results survive restarts and are invalidated by the same
source-fingerprint rule as every other cached result in the repo — a
code change can never serve a stale report.

A disk hit is *promoted* into the memory tier; an LRU insert evicts
least-recently-used entries until both bounds hold.  An optional disk
TTL (``disk_ttl_days``, off by default) ages the disk tier: a lookup
that finds an entry older than the TTL deletes it and reports a miss
(skip-and-delete), so long-running deployments can bound how old a
served result may be.  Every get/put updates the counters surfaced by
``GET /stats`` (memory/disk hits, misses, evictions — including TTL
evictions) — the observability the coalescing and latency acceptance
tests key on.

The service calls the ``get_async``/``put_async`` pair: the memory tier
is consulted/updated synchronously (it is pure dict work), but every
disk-tier read and write is offloaded to a dedicated single-thread
executor so the event loop never blocks on file I/O — and so all disk
access is serialised through one thread, keeping the underlying
:class:`ResultCache` free of cross-thread races.  The plain sync
``get``/``put`` remain for non-async callers and tests.
"""

from __future__ import annotations

import asyncio
import json
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path

from ..bench.cache import ResultCache
from .jobs import canonical_bytes

#: Experiment name of the service's slice of the on-disk store.
DISK_EXPERIMENT = "serve"

#: Default memory-tier bound (64 MiB of canonical result bytes).
DEFAULT_MAX_MEMORY_MB = 64.0

#: Default memory-tier entry bound.
DEFAULT_MAX_ENTRIES = 4096

#: Sentinel a disk lookup returns for a TTL-expired entry (already
#: deleted by the lookup); distinct from ``None`` (plain miss) so the
#: caller can count the eviction.
_STALE = object()


@dataclass
class CacheStats:
    """Counters surfaced on ``GET /stats``."""

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    coalesced: int = 0
    memory_evictions: int = 0
    disk_ttl_evictions: int = 0

    def to_dict(self, lru: "MemoryLRU") -> dict:
        return {
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "coalesced": self.coalesced,
            "memory_entries": len(lru),
            "memory_bytes": lru.total_bytes,
            "memory_evictions": self.memory_evictions,
            "disk_ttl_evictions": self.disk_ttl_evictions,
        }


@dataclass
class MemoryLRU:
    """Bounded LRU of ``key -> canonical result bytes``."""

    max_bytes: int = int(DEFAULT_MAX_MEMORY_MB * 1024 * 1024)
    max_entries: int = DEFAULT_MAX_ENTRIES
    total_bytes: int = 0
    _entries: OrderedDict = field(default_factory=OrderedDict)

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: str) -> bytes | None:
        payload = self._entries.get(key)
        if payload is not None:
            self._entries.move_to_end(key)
        return payload

    def put(self, key: str, payload: bytes) -> int:
        """Insert (or refresh) an entry; returns how many were evicted.

        A payload larger than the byte bound is simply not admitted —
        bounds are bounds, and the disk tier still holds it.
        """
        if len(payload) > self.max_bytes:
            return 0
        old = self._entries.pop(key, None)
        if old is not None:
            self.total_bytes -= len(old)
        self._entries[key] = payload
        self.total_bytes += len(payload)
        evicted = 0
        while self._entries and (
            self.total_bytes > self.max_bytes or len(self._entries) > self.max_entries
        ):
            _, dropped = self._entries.popitem(last=False)
            self.total_bytes -= len(dropped)
            evicted += 1
        return evicted


class TwoTierCache:
    """Memory LRU over the on-disk sweep-engine store, with counters."""

    def __init__(
        self,
        cache_dir: Path | str | None = None,
        *,
        max_memory_mb: float = DEFAULT_MAX_MEMORY_MB,
        max_entries: int = DEFAULT_MAX_ENTRIES,
        use_disk: bool = True,
        disk_ttl_days: float | None = None,
    ) -> None:
        if disk_ttl_days is not None and disk_ttl_days <= 0:
            raise ValueError(f"disk_ttl_days must be positive, got {disk_ttl_days}")
        self.memory = MemoryLRU(
            max_bytes=int(max_memory_mb * 1024 * 1024), max_entries=max_entries
        )
        self.disk = ResultCache(cache_dir) if use_disk else None
        self.disk_ttl_s = (
            None if disk_ttl_days is None else disk_ttl_days * 86400.0
        )
        self.stats = CacheStats()
        self._disk_pool: ThreadPoolExecutor | None = None

    # -- lifecycle -------------------------------------------------------

    def _disk_executor(self) -> ThreadPoolExecutor:
        # One thread, lazily: serialises every disk read/write, so the
        # ResultCache never sees concurrent access.
        if self._disk_pool is None:
            self._disk_pool = ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="serve-cache-disk"
            )
        return self._disk_pool

    def close(self) -> None:
        if self._disk_pool is not None:
            self._disk_pool.shutdown(wait=True)
            self._disk_pool = None

    # -- lookups ---------------------------------------------------------

    def _record_memory_hit(self, payload: bytes) -> tuple[bytes, str]:
        self.stats.memory_hits += 1
        return payload, "memory"

    def _record_disk_hit(self, key: str, entry: dict) -> tuple[bytes, str]:
        payload = canonical_bytes(entry["result"])
        self.stats.disk_hits += 1
        self.stats.memory_evictions += self.memory.put(key, payload)
        return payload, "disk"

    def _disk_lookup(self, key: str):
        """Disk-tier read with the TTL check (runs on the disk thread).

        Returns the entry dict, ``None`` (plain miss), or :data:`_STALE`
        when the entry exceeded ``disk_ttl_s`` — in which case it has
        already been deleted from the store (skip-and-delete), so the
        next request recomputes instead of re-judging staleness.
        Entries predating the timestamp field are treated as stale too:
        their age is unknowable, and a TTL the operator asked for must
        never be quietly unbounded.
        """
        entry = self.disk.get(DISK_EXPERIMENT, key)
        if entry is None or self.disk_ttl_s is None:
            return entry
        stored_s = entry.get("stored_s")
        if stored_s is not None and time.time() - stored_s <= self.disk_ttl_s:
            return entry
        self.disk.remove(DISK_EXPERIMENT, key)
        self.disk.flush()
        return _STALE

    def get(self, key: str) -> tuple[bytes, str] | None:
        """Look a job key up: ``(canonical bytes, tier)`` or ``None``.

        Disk hits are re-encoded through the same canonical encoder that
        produced them, so memory- and disk-served bytes are identical.
        """
        payload = self.memory.get(key)
        if payload is not None:
            return self._record_memory_hit(payload)
        if self.disk is not None:
            entry = self._disk_lookup(key)
            if entry is _STALE:
                self.stats.disk_ttl_evictions += 1
            elif entry is not None:
                return self._record_disk_hit(key, entry)
        return None

    async def get_async(self, key: str, trace=None) -> tuple[bytes, str] | None:
        """:meth:`get` with the disk-tier read off the event loop.

        When a :class:`~repro.serve.tracing.RequestTrace` is supplied,
        the probe is recorded as the request's ``cache_lookup`` span and
        the serving tier (or ``miss``) as a trace annotation.
        """
        if trace is not None:
            with trace.span("cache_lookup"):
                found = await self._get_async(key)
            trace.annotate(cache="miss" if found is None else found[1])
            return found
        return await self._get_async(key)

    async def _get_async(self, key: str) -> tuple[bytes, str] | None:
        payload = self.memory.get(key)
        if payload is not None:
            return self._record_memory_hit(payload)
        if self.disk is not None:
            entry = await asyncio.get_running_loop().run_in_executor(
                self._disk_executor(), self._disk_lookup, key
            )
            if entry is _STALE:
                self.stats.disk_ttl_evictions += 1
            elif entry is not None:
                return self._record_disk_hit(key, entry)
        return None

    # -- inserts ---------------------------------------------------------

    def _disk_put(self, key: str, payload: bytes, elapsed_s: float) -> None:
        self.disk.put(DISK_EXPERIMENT, key, json.loads(payload), elapsed_s)
        self.disk.flush()

    def put(self, key: str, payload: bytes, elapsed_s: float) -> None:
        """Record a fresh result in both tiers (counted as one miss)."""
        self.stats.misses += 1
        self.stats.memory_evictions += self.memory.put(key, payload)
        if self.disk is not None:
            self._disk_put(key, payload, elapsed_s)

    async def put_async(self, key: str, payload: bytes, elapsed_s: float) -> None:
        """:meth:`put` with the disk-tier write off the event loop."""
        self.stats.misses += 1
        self.stats.memory_evictions += self.memory.put(key, payload)
        if self.disk is not None:
            await asyncio.get_running_loop().run_in_executor(
                self._disk_executor(), self._disk_put, key, payload, elapsed_s
            )

    def to_dict(self) -> dict:
        return self.stats.to_dict(self.memory)
