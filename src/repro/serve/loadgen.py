"""Load generator for the compilation service: ``repro bench serve``.

Boots a :class:`~repro.serve.service.CompileService` plus its HTTP
front-end on an ephemeral localhost port, drives a configurable request
mix at a configurable concurrency through *real* HTTP connections, and
records latency/throughput cells into the same schema-validated
``BENCH_<date>.json`` trajectory the microbenchmark suite feeds — so
service performance is guarded by ``repro bench compare`` exactly like
scheduler performance is.

Three phases, three cells:

* ``serve-cold`` — a fresh cache (private temp dir), so every distinct
  job in the mix executes once and concurrent duplicates exercise the
  coalescer,
* ``serve-warm`` — the identical request list again, now served from
  the in-memory tier; the cold/warm p50 ratio is the cache's measured
  speedup and is printed after the run,
* ``serve-backpressure`` — the same mix against a second service booted
  with ``max_inflight_per_client=1`` and its own cold cache, so the
  concurrent workers (all one client address) collide with the
  per-client limiter and the 429 path is exercised under real load.

Each cell records request count, concurrency, error count, rejected
(429) count, p50/p99 latency (ms) and throughput (requests/s).  The
percentile samples cover **successful** requests only: a transport
failure or error response has a latency that measures the failure mode
(connect timeout, instant rejection), not the service, and folding it
into the percentiles skews the cells both ways.  Failed-request
latencies are kept separately for diagnostics.  ``--quick`` shrinks the
mix and concurrency to a seconds-scale CI smoke run.
"""

from __future__ import annotations

import asyncio
import json
import platform
import sys
import tempfile
import time
from dataclasses import dataclass, field
from datetime import datetime, timezone
from pathlib import Path

from .http import start_http_server
from .service import CompileService

#: The request mix: small, structurally different jobs across both
#: machine families plus a trace, so the mix exercises compile and
#: trace paths and more than one cache key.
DEFAULT_MIX: tuple[tuple[str, dict], ...] = (
    ("/compile", {"workload": "GHZ_n16", "machine": "grid:2x2:12"}),
    ("/compile", {"workload": "GHZ_n16", "machine": "eml"}),
    ("/compile", {"workload": "QFT_n16", "machine": "eml"}),
    ("/compile", {"workload": "GHZ_n16", "machine": "eml", "physics": "perfect-gate"}),
    ("/trace", {"workload": "GHZ_n16", "machine": "grid:2x2:12"}),
)

#: Identity fields of the serve cells in ``BENCH_*.json``; stable
#: across runs so ``repro bench compare`` matches them by key.
MIX_LABEL = "mix:compile+trace"


@dataclass
class PhaseResult:
    """One load phase: outcome counters plus per-outcome latencies.

    ``latencies_ms`` holds successful (HTTP 200) requests only — the
    population the percentile cells are computed from.  Rejected (429)
    and failed requests are counted separately and their latencies kept
    in ``failed_latencies_ms`` for diagnostics, never mixed into the
    percentile samples.
    """

    phase: str
    wall_s: float = 0.0
    latencies_ms: list[float] = field(default_factory=list)
    failed_latencies_ms: list[float] = field(default_factory=list)
    errors: int = 0
    rejected: int = 0

    def record(self, status: int, elapsed_ms: float) -> None:
        """File one finished request under its outcome.

        ``status`` 0 means the transport failed before a status line
        arrived (dropped connection, garbled response).
        """
        if status == 200:
            self.latencies_ms.append(elapsed_ms)
            return
        self.failed_latencies_ms.append(elapsed_ms)
        if status == 429:
            self.rejected += 1
        else:
            self.errors += 1

    @property
    def attempts(self) -> int:
        return len(self.latencies_ms) + len(self.failed_latencies_ms)

    def percentile(self, q: float) -> float:
        ordered = sorted(self.latencies_ms)
        if not ordered:
            return 0.0
        index = min(len(ordered) - 1, round(q * (len(ordered) - 1)))
        return ordered[index]

    @property
    def throughput_rps(self) -> float:
        return len(self.latencies_ms) / self.wall_s if self.wall_s > 0 else 0.0

    def cell(self, concurrency: int) -> dict:
        return {
            "workload": MIX_LABEL,
            "machine": "mix",
            "compiler": "mix",
            "mode": f"serve-{self.phase}",
            "concurrency": concurrency,
            "requests": self.attempts,
            "errors": self.errors,
            "rejected": self.rejected,
            "p50_ms": round(self.percentile(0.50), 3),
            "p99_ms": round(self.percentile(0.99), 3),
            "throughput_rps": round(self.throughput_rps, 2),
        }


async def _request(host: str, port: int, path: str, payload: dict) -> tuple[int, bytes]:
    """One HTTP POST over a fresh connection; returns (status, body)."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        body = json.dumps(payload).encode()
        writer.write(
            (
                f"POST {path} HTTP/1.1\r\n"
                f"Host: {host}\r\n"
                "Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n"
                "Connection: close\r\n\r\n"
            ).encode()
            + body
        )
        await writer.drain()
        raw = await reader.read()
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass
    head, _, response_body = raw.partition(b"\r\n\r\n")
    status = int(head.split(b" ", 2)[1])
    return status, response_body


async def _run_phase(
    host: str,
    port: int,
    phase: str,
    request_list: list[tuple[str, dict]],
    concurrency: int,
) -> PhaseResult:
    queue: asyncio.Queue = asyncio.Queue()
    for item in request_list:
        queue.put_nowait(item)
    result = PhaseResult(phase)

    async def worker() -> None:
        while True:
            try:
                path, payload = queue.get_nowait()
            except asyncio.QueueEmpty:
                return
            started = time.perf_counter()
            try:
                status, _ = await _request(host, port, path, payload)
            except (OSError, EOFError, ValueError, IndexError):
                # A dropped connection or garbled response is one failed
                # request, not a reason to abort the whole bench run.
                status = 0
            result.record(status, (time.perf_counter() - started) * 1000.0)

    started = time.perf_counter()
    await asyncio.gather(*(worker() for _ in range(concurrency)))
    result.wall_s = time.perf_counter() - started
    return result


def _request_list(requests: int) -> list[tuple[str, dict]]:
    """Round-robin through the mix until *requests* entries exist — so
    duplicates are plentiful and the coalescer/cache actually works."""
    return [DEFAULT_MIX[index % len(DEFAULT_MIX)] for index in range(requests)]


async def _run_load(
    *, requests: int, concurrency: int, jobs: int | None, cache_dir: str
) -> tuple[PhaseResult, PhaseResult, PhaseResult, dict]:
    request_list = _request_list(requests)
    service = CompileService(jobs=jobs, cache_dir=cache_dir)
    server = await start_http_server(service, "127.0.0.1", 0)
    host, port = server.sockets[0].getsockname()[:2]
    try:
        cold = await _run_phase(host, port, "cold", request_list, concurrency)
        warm = await _run_phase(host, port, "warm", request_list, concurrency)
        stats = service.stats()
    finally:
        server.close()
        await server.wait_closed()
        service.close()

    # Backpressure phase: a second service, cold private cache, one
    # in-flight request per client.  Every worker shares one client
    # address (localhost), so concurrent requests collide with the
    # limiter and the 429 path runs under real load.
    bp_service = CompileService(
        jobs=jobs,
        cache_dir=str(Path(cache_dir) / "backpressure"),
        max_inflight_per_client=1,
    )
    bp_server = await start_http_server(bp_service, "127.0.0.1", 0)
    bp_host, bp_port = bp_server.sockets[0].getsockname()[:2]
    try:
        backpressure = await _run_phase(
            bp_host, bp_port, "backpressure", request_list, max(concurrency, 2)
        )
        stats["backpressure_phase"] = bp_service.stats()["backpressure"]
    finally:
        bp_server.close()
        await bp_server.wait_closed()
        bp_service.close()
    return cold, warm, backpressure, stats


def run_serve_bench(
    *,
    requests: int = 60,
    concurrency: int = 8,
    jobs: int | None = None,
    quick: bool = False,
) -> dict:
    """Run the load generator; returns a validated BENCH payload whose
    cells are the cold, warm, and backpressure phases (plus the final
    ``/stats`` under a non-schema sibling key for the human summary)."""
    from ..bench.micro import SCHEMA_VERSION, validate_payload

    if quick:
        requests = min(requests, 20)
        concurrency = min(concurrency, 4)
    if requests < len(DEFAULT_MIX):
        raise ValueError(
            f"requests must cover the {len(DEFAULT_MIX)}-entry mix, got {requests}"
        )
    if concurrency < 1:
        raise ValueError(f"concurrency must be >= 1, got {concurrency}")
    with tempfile.TemporaryDirectory(prefix="repro-serve-bench-") as cache_dir:
        cold, warm, backpressure, stats = asyncio.run(
            _run_load(
                requests=requests,
                concurrency=concurrency,
                jobs=jobs,
                cache_dir=cache_dir,
            )
        )
    if backpressure.rejected == 0:
        raise RuntimeError(
            "backpressure phase saw zero 429 rejections — the per-client "
            "limiter did not engage under concurrent load"
        )
    payload = {
        "schema_version": SCHEMA_VERSION,
        "created_utc": datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ"),
        "grid": "serve",
        "repeats": 1,
        "environment": {
            "python": sys.version.split()[0],
            "platform": platform.platform(),
        },
        "cells": [
            cold.cell(concurrency),
            warm.cell(concurrency),
            backpressure.cell(max(concurrency, 2)),
        ],
    }
    validate_payload(payload)
    # Diagnostics ride alongside (not part of the schema-validated payload).
    payload_stats = {
        "stats": stats,
        "cold_p50_ms": cold.cell(concurrency)["p50_ms"],
        "warm_p50_ms": warm.cell(concurrency)["p50_ms"],
        "backpressure_rejected": backpressure.rejected,
        "backpressure_attempts": backpressure.attempts,
    }
    return {"payload": payload, "diagnostics": payload_stats}


def render(result: dict) -> str:
    """Human summary: the three cells plus the cache's measured speedup."""
    from ..analysis.tables import render_table

    payload = result["payload"]
    headers = [
        "phase",
        "requests",
        "conc",
        "p50 (ms)",
        "p99 (ms)",
        "req/s",
        "errors",
        "429s",
    ]
    body = [
        [
            cell["mode"].removeprefix("serve-"),
            cell["requests"],
            cell["concurrency"],
            f"{cell['p50_ms']:.1f}",
            f"{cell['p99_ms']:.1f}",
            f"{cell['throughput_rps']:.1f}",
            cell["errors"],
            cell.get("rejected", 0),
        ]
        for cell in payload["cells"]
    ]
    lines = [render_table(headers, body, title="Service load benchmark")]
    cold = result["diagnostics"]["cold_p50_ms"]
    warm = result["diagnostics"]["warm_p50_ms"]
    if warm > 0:
        lines.append(f"cold/warm p50 speedup: {cold / warm:.1f}x")
    cache = result["diagnostics"]["stats"]["cache"]
    lines.append(
        f"cache: {cache['memory_hits']} memory + {cache['disk_hits']} disk hits, "
        f"{cache['misses']} misses, {cache['coalesced']} coalesced"
    )
    rejected = result["diagnostics"].get("backpressure_rejected")
    if rejected is not None:
        lines.append(
            f"backpressure: {rejected} of "
            f"{result['diagnostics']['backpressure_attempts']} requests "
            "rejected with 429 (max-inflight-per-client=1)"
        )
    return "\n".join(lines)
