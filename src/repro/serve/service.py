"""The compilation service: worker pool, coalescing, cache, observability.

:class:`CompileService` is the transport-free core behind ``repro
serve`` — the HTTP layer (:mod:`repro.serve.http`) only parses requests
and serialises what this class returns, so the whole service contract is
testable without a socket.

Request path of one ``/compile`` job::

    parse_job()  ->  cache.get(job.key)        memory / disk hit?
                 ->  self._inflight[job.key]   identical job running? await it
                 ->  run_in_executor(pool, _execute_job, ...)   fresh miss

Coalescing: the first request for a key installs an ``asyncio.Future``
in ``_inflight``; every concurrent identical request awaits that future
and receives the *same canonical bytes* (counted in
``stats.cache.coalesced``), so N simultaneous users of one spec cost one
execution.  Results are cached as canonical JSON bytes in the two-tier
:class:`~repro.serve.cache.TwoTierCache`.

Workers: a :class:`~concurrent.futures.ProcessPoolExecutor` (the same
engine the sweep subsystem uses) created lazily on first miss; ``jobs=0``
selects a thread pool instead — handy for tests and tiny deployments
where process spin-up dominates.

Observability (all stdlib, all in-process):

* every request carries a :class:`~repro.serve.tracing.RequestTrace`
  whose spans (parse, cache lookup, queue wait, execute, encode) are
  returned in the response metadata and kept in the bounded
  :class:`~repro.serve.tracing.TraceRing` behind ``GET /trace/recent``,
* a :class:`~repro.serve.metrics.MetricsRegistry` instruments request
  latency per endpoint, span timings, both cache tiers, the coalescer,
  worker-pool queue depth, connection shedding and per-client 429s —
  exported as Prometheus text at ``GET /metrics``,
* :class:`ClientLimiter` applies per-client backpressure: an in-flight
  cap plus a token-bucket rate, answered with a structured 429 +
  ``Retry-After`` by the HTTP layer so one greedy client cannot starve
  the pool.
"""

from __future__ import annotations

import asyncio
import json
import time
from collections import OrderedDict
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path

from ..hardware import canonical_machine_spec, resolve_machine
from ..physics import resolve_physics
from ..pipeline import default_registry, resolve_compiler
from ..sim import replay
from ..workloads import get_benchmark
from .cache import DEFAULT_MAX_MEMORY_MB, TwoTierCache
from .jobs import DEFAULTS, Job, JobError, canonical_bytes, parse_job
from .metrics import MetricsRegistry
from .tracing import DEFAULT_RING_CAPACITY, RequestTrace, TraceRing

#: Default machine offered to grid-family baselines by ``/compare``
#: (mirrors ``repro compare --grid``).
DEFAULT_GRID = "grid:3x4:16"

#: Endpoint label values of the request metrics; anything else (404
#: spam) collapses into ``other`` so label cardinality stays bounded.
KNOWN_ENDPOINTS = (
    "/compile",
    "/trace",
    "/compare",
    "/healthz",
    "/stats",
    "/metrics",
    "/trace/recent",
)


class ServeExecutionError(RuntimeError):
    """A validated job failed while executing (a 500, not a 400)."""


def _execute_job(kind: str, workload: str, machine: str, compiler: str, physics: str) -> dict:
    """Worker entry point: compile + price one validated job.

    Module-level and spec-string addressed, so it pickles across the
    process pool; returns a JSON-safe dict (the unit the cache stores).
    """
    circuit = get_benchmark(workload)
    resolved_machine = resolve_machine(machine, circuit.num_qubits)
    resolved_compiler = resolve_compiler(compiler)
    params = resolve_physics(physics)
    program = resolved_compiler.compile(circuit, resolved_machine)
    ledger = replay(program)
    ledger.verify_priceable(params)
    if kind == "trace":
        return {
            "circuit": circuit.name,
            "compiler": program.compiler_name,
            "num_qubits": circuit.num_qubits,
            "shuttle_count": program.shuttle_count,
            "operations": ledger.records(params),
        }
    return ledger.reprice(params).to_dict()


def _execute_job_timed(
    kind: str, workload: str, machine: str, compiler: str, physics: str
) -> tuple[float, dict]:
    """:func:`_execute_job` plus the wall-clock instant the worker
    actually started — the service subtracts its submit instant to split
    pool ``queue_wait`` from ``execute`` in the request trace.  (Late
    module-global lookup so tests monkeypatching ``_execute_job`` keep
    working.)"""
    started = time.time()
    return started, _execute_job(kind, workload, machine, compiler, physics)


@dataclass
class _ClientState:
    """Token bucket + in-flight count of one client address."""

    tokens: float
    updated: float
    inflight: int = 0


@dataclass
class ClientLimiter:
    """Per-client backpressure: in-flight cap + token-bucket rate.

    ``max_inflight`` bounds how many requests one client address may
    have executing at once; ``rate_per_s`` bounds its sustained request
    rate (token bucket, burst capacity = one second of tokens, floor 1).
    Either knob at 0 disables that check; both at 0 disable the limiter
    entirely (``admit`` is then a no-op returning ``None``).

    :meth:`admit` returns ``None`` on admission (the caller must balance
    it with :meth:`release`) or ``(retry_after_s, reason)`` when the
    request must be answered with a 429.  Client state lives in a
    bounded LRU so a scan of short-lived source addresses cannot grow
    memory without bound — only idle clients (``inflight == 0``) are
    evicted.
    """

    max_inflight: int = 0
    rate_per_s: float = 0.0
    max_clients: int = 1024
    clock: object = time.monotonic
    rejected_inflight: int = 0
    rejected_rate: int = 0
    _clients: OrderedDict = field(default_factory=OrderedDict)

    def __post_init__(self) -> None:
        if self.max_inflight < 0:
            raise ValueError(
                f"max_inflight must be >= 0 (0 = unlimited), got {self.max_inflight}"
            )
        if self.rate_per_s < 0:
            raise ValueError(
                f"rate_per_s must be >= 0 (0 = unlimited), got {self.rate_per_s}"
            )
        if self.max_clients < 1:
            raise ValueError(f"max_clients must be >= 1, got {self.max_clients}")
        self.burst = max(1.0, self.rate_per_s)

    @property
    def enabled(self) -> bool:
        return bool(self.max_inflight or self.rate_per_s)

    @property
    def rejected(self) -> int:
        return self.rejected_inflight + self.rejected_rate

    def _state(self, client: str) -> _ClientState:
        state = self._clients.get(client)
        if state is None:
            state = self._clients[client] = _ClientState(
                tokens=self.burst, updated=self.clock()
            )
        self._clients.move_to_end(client)
        while len(self._clients) > self.max_clients:
            # Evict the least-recently-seen *idle* client; an in-flight
            # one must keep its state so release() stays balanced.
            for key in self._clients:
                if self._clients[key].inflight == 0:
                    del self._clients[key]
                    break
            else:
                break
        return state

    def admit(self, client: str) -> tuple[float, str] | None:
        """``None`` = admitted (balance with :meth:`release`); otherwise
        ``(retry_after_s, reason)`` with reason ``inflight`` or ``rate``."""
        if not self.enabled:
            return None
        state = self._state(client)
        if self.max_inflight and state.inflight >= self.max_inflight:
            self.rejected_inflight += 1
            return 1.0, "inflight"
        if self.rate_per_s:
            now = self.clock()
            state.tokens = min(
                self.burst, state.tokens + (now - state.updated) * self.rate_per_s
            )
            state.updated = now
            if state.tokens < 1.0:
                self.rejected_rate += 1
                return (1.0 - state.tokens) / self.rate_per_s, "rate"
            state.tokens -= 1.0
        state.inflight += 1
        return None

    def release(self, client: str) -> None:
        """Balance one successful :meth:`admit`."""
        if not self.enabled:
            return
        state = self._clients.get(client)
        if state is not None and state.inflight > 0:
            state.inflight -= 1

    def to_dict(self) -> dict:
        return {
            "max_inflight_per_client": self.max_inflight,
            "rate_per_client": self.rate_per_s,
            "rejected": self.rejected,
            "clients": len(self._clients),
        }


class CompileService:
    """Async compile/trace/compare service over a worker pool."""

    def __init__(
        self,
        *,
        jobs: int | None = None,
        cache_dir: Path | str | None = None,
        max_memory_mb: float = DEFAULT_MAX_MEMORY_MB,
        use_disk_cache: bool = True,
        disk_ttl_days: float | None = None,
        max_connections: int = 0,
        max_inflight_per_client: int = 0,
        rate_per_client: float = 0.0,
        trace_ring: int = DEFAULT_RING_CAPACITY,
    ) -> None:
        import os

        if max_connections < 0:
            raise ValueError(
                f"max_connections must be >= 0 (0 = unlimited), got {max_connections}"
            )
        self.jobs = (os.cpu_count() or 1) if jobs is None else jobs
        self.cache = TwoTierCache(
            cache_dir,
            max_memory_mb=max_memory_mb,
            use_disk=use_disk_cache,
            disk_ttl_days=disk_ttl_days,
        )
        self.max_connections = max_connections
        self.active_connections = 0
        self.shed_connections = 0
        self.limiter = ClientLimiter(
            max_inflight=max_inflight_per_client, rate_per_s=rate_per_client
        )
        self.trace_ring = TraceRing(trace_ring)
        self.started = time.monotonic()
        self.requests: dict[str, int] = {}
        self._inflight: dict[str, asyncio.Future] = {}
        self._executing = 0
        self._pool: Executor | None = None
        self.metrics = MetricsRegistry()
        self._build_metrics()

    def _build_metrics(self) -> None:
        metrics = self.metrics
        self._metric_requests = metrics.counter(
            "repro_serve_requests_total",
            "Requests by endpoint and HTTP status.",
            labels=("endpoint", "status"),
        )
        self._metric_request_seconds = metrics.histogram(
            "repro_serve_request_seconds",
            "Request latency by endpoint, in seconds.",
            labels=("endpoint",),
        )
        self._metric_span_seconds = metrics.histogram(
            "repro_serve_span_seconds",
            "Per-request span timings (parse, cache_lookup, queue_wait, "
            "execute, encode, coalesced_wait), in seconds.",
            labels=("span",),
        )
        self._metric_rate_limited = metrics.counter(
            "repro_serve_rate_limited_total",
            "Requests answered 429 by the per-client limiter, by reason.",
            labels=("reason",),
        )
        stats = self.cache.stats
        metrics.counter(
            "repro_serve_cache_memory_hits_total",
            "Requests served from the in-memory cache tier.",
            fn=lambda: stats.memory_hits,
        )
        metrics.counter(
            "repro_serve_cache_disk_hits_total",
            "Requests served from the on-disk cache tier.",
            fn=lambda: stats.disk_hits,
        )
        metrics.counter(
            "repro_serve_cache_misses_total",
            "Requests that executed fresh (both cache tiers missed).",
            fn=lambda: stats.misses,
        )
        metrics.counter(
            "repro_serve_coalesced_total",
            "Requests that awaited an identical in-flight execution.",
            fn=lambda: stats.coalesced,
        )
        metrics.counter(
            "repro_serve_cache_memory_evictions_total",
            "Entries evicted from the in-memory LRU tier.",
            fn=lambda: stats.memory_evictions,
        )
        metrics.counter(
            "repro_serve_cache_disk_ttl_evictions_total",
            "Disk-tier entries deleted by the TTL skip-and-delete rule.",
            fn=lambda: stats.disk_ttl_evictions,
        )
        metrics.gauge(
            "repro_serve_cache_memory_bytes",
            "Canonical result bytes held by the in-memory tier.",
            fn=lambda: self.cache.memory.total_bytes,
        )
        metrics.gauge(
            "repro_serve_cache_memory_entries",
            "Entries held by the in-memory tier.",
            fn=lambda: len(self.cache.memory),
        )
        metrics.gauge(
            "repro_serve_queue_depth",
            "Jobs submitted to the worker pool and not yet finished.",
            fn=lambda: self._executing,
        )
        metrics.gauge(
            "repro_serve_inflight_jobs",
            "Distinct job keys currently executing or coalescing.",
            fn=lambda: len(self._inflight),
        )
        metrics.gauge(
            "repro_serve_connections_active",
            "Open client connections.",
            fn=lambda: self.active_connections,
        )
        metrics.counter(
            "repro_serve_connections_shed_total",
            "Connections answered 503 over the --max-connections limit.",
            fn=lambda: self.shed_connections,
        )
        metrics.counter(
            "repro_serve_clients_rejected_total",
            "Requests rejected by the per-client limiter (all reasons).",
            fn=lambda: self.limiter.rejected,
        )
        metrics.gauge(
            "repro_serve_uptime_seconds",
            "Seconds since the service started.",
            fn=lambda: self.uptime_s,
        )

    # -- lifecycle -------------------------------------------------------

    def _executor(self) -> Executor:
        if self._pool is None:
            if self.jobs <= 0:
                self._pool = ThreadPoolExecutor(max_workers=4)
            else:
                # Workers fork lazily, *after* the event loop is running —
                # the default fork start method can inherit a locked lock
                # from the loop's internals and deadlock the child, so the
                # service always spawns fresh interpreters.
                import multiprocessing

                self._pool = ProcessPoolExecutor(
                    max_workers=self.jobs,
                    mp_context=multiprocessing.get_context("spawn"),
                )
        return self._pool

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None
        self.cache.close()

    # -- bookkeeping -----------------------------------------------------

    def _count(self, endpoint: str) -> None:
        self.requests[endpoint] = self.requests.get(endpoint, 0) + 1

    def connection_opened(self) -> bool:
        """Admit (or shed) one incoming connection.

        Returns ``False`` — and counts the shed — when the
        ``max_connections`` limit is reached; the HTTP layer answers
        such connections with a structured 503 and closes them.  A
        ``True`` return must be balanced by :meth:`connection_closed`.
        """
        if self.max_connections and self.active_connections >= self.max_connections:
            self.shed_connections += 1
            return False
        self.active_connections += 1
        return True

    def connection_closed(self) -> None:
        self.active_connections -= 1

    def admit_request(self, client: str) -> float | None:
        """Per-client backpressure gate of one compute request.

        ``None`` = admitted (balance with :meth:`release_request`);
        otherwise the seconds the client should wait before retrying —
        the HTTP layer turns that into a 429 + ``Retry-After``.
        """
        verdict = self.limiter.admit(client)
        if verdict is None:
            return None
        retry_after, reason = verdict
        self._metric_rate_limited.inc(reason=reason)
        return retry_after

    def release_request(self, client: str) -> None:
        self.limiter.release(client)

    def finish_request(
        self, trace: RequestTrace, status: int, elapsed_s: float
    ) -> None:
        """Record one finished request: metrics + the trace ring."""
        endpoint = trace.endpoint if trace.endpoint in KNOWN_ENDPOINTS else "other"
        self._metric_requests.inc(endpoint=endpoint, status=str(status))
        self._metric_request_seconds.observe(elapsed_s, endpoint=endpoint)
        for span in trace.spans:
            self._metric_span_seconds.observe(span.ms / 1000.0, span=span.name)
        self.trace_ring.record(trace, status=status, total_ms=elapsed_s * 1000.0)

    @property
    def uptime_s(self) -> float:
        return time.monotonic() - self.started

    def health(self) -> dict:
        from .. import __version__

        self._count("healthz")
        return {
            "status": "ok",
            "uptime_s": round(self.uptime_s, 3),
            "version": __version__,
        }

    def stats(self) -> dict:
        self._count("stats")
        return {
            "uptime_s": round(self.uptime_s, 3),
            "requests": dict(sorted(self.requests.items())),
            "cache": self.cache.to_dict(),
            "connections": {
                "active": self.active_connections,
                "limit": self.max_connections,
                "shed": self.shed_connections,
            },
            "backpressure": self.limiter.to_dict(),
            "workers": self.jobs,
        }

    def metrics_text(self) -> str:
        """``GET /metrics``: the Prometheus text exposition page."""
        self._count("metrics")
        return self.metrics.render()

    def trace_recent(self) -> dict:
        """``GET /trace/recent``: the bounded ring of finished traces."""
        self._count("trace_recent")
        return {
            "capacity": self.trace_ring.capacity,
            "traces": self.trace_ring.recent(),
        }

    # -- the core: cached, coalesced execution ---------------------------

    async def result_bytes(
        self, job: Job, trace: RequestTrace | None = None
    ) -> tuple[bytes, str]:
        """Canonical result bytes for *job* plus how they were obtained
        (``memory`` / ``disk`` / ``coalesced`` / ``miss``).

        This is the coalescing point: concurrent calls with the same
        ``job.key`` share one execution and receive identical bytes.
        Span timings (cache lookup, coalesced wait, queue wait, execute)
        are recorded on *trace* when one is supplied.
        """
        if trace is None:
            trace = RequestTrace.begin(endpoint="internal")
        cached = await self.cache.get_async(job.key, trace=trace)
        if cached is not None:
            return cached
        inflight = self._inflight.get(job.key)
        if inflight is not None:
            with trace.span("coalesced_wait"):
                payload = await asyncio.shield(inflight)
            self.cache.stats.coalesced += 1
            trace.annotate(cache="coalesced")
            return payload, "coalesced"
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._inflight[job.key] = future
        started = time.perf_counter()
        submitted_wall = time.time()
        self._executing += 1
        try:
            worker_started, result = await loop.run_in_executor(
                self._executor(),
                _execute_job_timed,
                job.kind,
                job.workload,
                job.machine,
                job.compiler,
                job.physics,
            )
        except Exception as error:
            if not future.cancelled():
                future.set_exception(
                    ServeExecutionError(f"{job.workload} failed: {error}")
                )
                # The exception is delivered to every coalesced waiter (or
                # nobody); either way it is not "unretrieved".
                future.exception()
            raise ServeExecutionError(
                f"executing {job.workload} on {job.machine} with "
                f"{job.compiler} failed: {error}"
            ) from error
        else:
            elapsed_s = time.perf_counter() - started
            # time.time() is comparable across (spawned) worker processes,
            # so the worker's start instant splits pool queue wait from
            # actual execution; clamped into [0, elapsed] against clock skew.
            queue_wait = min(max(worker_started - submitted_wall, 0.0), elapsed_s)
            trace.add("queue_wait", queue_wait)
            trace.add("execute", elapsed_s - queue_wait)
            payload = canonical_bytes(result)
            # Resolve the coalesced waiters before the (off-loop) disk
            # write — they only need the bytes, not the persistence.
            if not future.cancelled():
                future.set_result(payload)
            await self.cache.put_async(job.key, payload, elapsed_s)
            return payload, "miss"
        finally:
            self._executing -= 1
            self._inflight.pop(job.key, None)
            if not future.done():
                # Only reachable when the leading call was torn down by
                # CancelledError (which bypasses `except Exception`),
                # e.g. executor shutdown: cancel the future so coalesced
                # waiters shielding on it are released instead of
                # hanging forever.
                future.cancel()

    # -- endpoint handlers ----------------------------------------------

    def _trace_for(self, endpoint: str, trace: RequestTrace | None) -> RequestTrace:
        return trace if trace is not None else RequestTrace.begin(endpoint=endpoint)

    async def compile(self, payload, trace: RequestTrace | None = None) -> dict:
        """``POST /compile``: one report, validated against REPORT_SCHEMA."""
        self._count("compile")
        trace = self._trace_for("/compile", trace)
        job = parse_job("compile", payload, trace=trace)
        started = time.perf_counter()
        result, state = await self.result_bytes(job, trace=trace)
        with trace.span("encode"):
            report = json.loads(result)
        return {
            "job": job.to_dict(),
            "cache": state,
            "elapsed_ms": round((time.perf_counter() - started) * 1000.0, 3),
            "trace_id": trace.trace_id,
            "spans": trace.spans_summary(),
            "report": report,
        }

    async def trace(self, payload, trace: RequestTrace | None = None) -> dict:
        """``POST /trace``: the schedule's timed op records."""
        self._count("trace")
        trace = self._trace_for("/trace", trace)
        job = parse_job("trace", payload, trace=trace)
        started = time.perf_counter()
        result, state = await self.result_bytes(job, trace=trace)
        with trace.span("encode"):
            records = json.loads(result)
        return {
            "job": job.to_dict(),
            "cache": state,
            "elapsed_ms": round((time.perf_counter() - started) * 1000.0, 3),
            "trace_id": trace.trace_id,
            "spans": trace.spans_summary(),
            "trace": records,
        }

    async def compare(self, payload, trace: RequestTrace | None = None) -> dict:
        """``POST /compare``: the paper suite as parallel compile sub-jobs.

        Every suite compiler becomes an ordinary ``compile`` job keyed on
        its own (circuit hash, specs) tuple, so comparison rows share the
        cache — and the coalescer — with plain ``/compile`` traffic.  A
        failing sub-job becomes a per-row ``error`` entry instead of
        abandoning its siblings mid-flight.
        """
        self._count("compare")
        trace = self._trace_for("/compare", trace)
        if isinstance(payload, dict) and "grid" in payload:
            payload = dict(payload)
            grid_spec = payload.pop("grid")
            if not isinstance(grid_spec, str) or not grid_spec.strip():
                raise JobError(
                    f"field 'grid' must be a machine spec string, got {grid_spec!r}",
                    field="grid",
                )
            try:
                grid_spec = canonical_machine_spec(grid_spec.strip())
            except ValueError as error:
                raise JobError(f"bad machine spec: {error}", field="grid") from None
        else:
            grid_spec = canonical_machine_spec(DEFAULT_GRID)
        if isinstance(payload, dict) and "compiler" in payload:
            raise JobError(
                "compare runs the registered paper suite; "
                "it does not accept a 'compiler' field",
                field="compiler",
            )
        base = parse_job(
            "compare",
            payload,
            allowed_fields=("workload", "machine", "physics"),
            trace=trace,
        )
        registry = default_registry()
        started = time.perf_counter()
        sub_jobs: list[Job] = []
        for name in registry.paper_suite():
            entry = registry.entry(name)
            machine = grid_spec if entry.machine_family == "grid" else base.machine
            sub_jobs.append(
                Job(
                    kind="compile",
                    workload=base.workload,
                    machine=machine,
                    compiler=name,
                    physics=base.physics,
                    circuit_hash=base.circuit_hash,
                )
            )
        # return_exceptions=True: a failing sub-job must not abandon its
        # sibling result_bytes tasks mid-flight (they would finish as
        # never-retrieved exceptions); failures become per-row errors.
        outcomes = await asyncio.gather(
            *(self.result_bytes(job, trace=trace) for job in sub_jobs),
            return_exceptions=True,
        )
        rows = []
        with trace.span("encode"):
            for job, outcome in zip(sub_jobs, outcomes):
                if isinstance(outcome, asyncio.CancelledError):
                    raise outcome  # cancellation is not a row error
                if isinstance(outcome, BaseException):
                    rows.append(
                        {
                            "compiler": job.compiler,
                            "machine": job.machine,
                            "error": {"status": 500, "message": str(outcome)},
                        }
                    )
                    continue
                result, state = outcome
                rows.append(
                    {
                        "compiler": job.compiler,
                        "machine": job.machine,
                        "cache": state,
                        "report": json.loads(result),
                    }
                )
        return {
            "job": base.to_dict(),
            "elapsed_ms": round((time.perf_counter() - started) * 1000.0, 3),
            "trace_id": trace.trace_id,
            "spans": trace.spans_summary(),
            "rows": rows,
        }


#: Re-exported defaults the CLI surfaces in ``--help``.
__all__ = [
    "ClientLimiter",
    "CompileService",
    "DEFAULT_GRID",
    "DEFAULTS",
    "KNOWN_ENDPOINTS",
    "ServeExecutionError",
    "_execute_job",
    "_execute_job_timed",
]
