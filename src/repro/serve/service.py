"""The compilation service: worker pool, coalescing, cache, stats.

:class:`CompileService` is the transport-free core behind ``repro
serve`` — the HTTP layer (:mod:`repro.serve.http`) only parses requests
and serialises what this class returns, so the whole service contract is
testable without a socket.

Request path of one ``/compile`` job::

    parse_job()  ->  cache.get(job.key)        memory / disk hit?
                 ->  self._inflight[job.key]   identical job running? await it
                 ->  run_in_executor(pool, _execute_job, ...)   fresh miss

Coalescing: the first request for a key installs an ``asyncio.Future``
in ``_inflight``; every concurrent identical request awaits that future
and receives the *same canonical bytes* (counted in
``stats.cache.coalesced``), so N simultaneous users of one spec cost one
execution.  Results are cached as canonical JSON bytes in the two-tier
:class:`~repro.serve.cache.TwoTierCache`.

Workers: a :class:`~concurrent.futures.ProcessPoolExecutor` (the same
engine the sweep subsystem uses) created lazily on first miss; ``jobs=0``
selects a thread pool instead — handy for tests and tiny deployments
where process spin-up dominates.
"""

from __future__ import annotations

import asyncio
import json
import time
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from pathlib import Path

from ..hardware import canonical_machine_spec, resolve_machine
from ..physics import resolve_physics
from ..pipeline import default_registry, resolve_compiler
from ..sim import replay
from ..workloads import get_benchmark
from .cache import DEFAULT_MAX_MEMORY_MB, TwoTierCache
from .jobs import DEFAULTS, Job, JobError, canonical_bytes, parse_job

#: Default machine offered to grid-family baselines by ``/compare``
#: (mirrors ``repro compare --grid``).
DEFAULT_GRID = "grid:3x4:16"


class ServeExecutionError(RuntimeError):
    """A validated job failed while executing (a 500, not a 400)."""


def _execute_job(kind: str, workload: str, machine: str, compiler: str, physics: str) -> dict:
    """Worker entry point: compile + price one validated job.

    Module-level and spec-string addressed, so it pickles across the
    process pool; returns a JSON-safe dict (the unit the cache stores).
    """
    circuit = get_benchmark(workload)
    resolved_machine = resolve_machine(machine, circuit.num_qubits)
    resolved_compiler = resolve_compiler(compiler)
    params = resolve_physics(physics)
    program = resolved_compiler.compile(circuit, resolved_machine)
    ledger = replay(program)
    ledger.verify_priceable(params)
    if kind == "trace":
        return {
            "circuit": circuit.name,
            "compiler": program.compiler_name,
            "num_qubits": circuit.num_qubits,
            "shuttle_count": program.shuttle_count,
            "operations": ledger.records(params),
        }
    return ledger.reprice(params).to_dict()


class CompileService:
    """Async compile/trace/compare service over a worker pool."""

    def __init__(
        self,
        *,
        jobs: int | None = None,
        cache_dir: Path | str | None = None,
        max_memory_mb: float = DEFAULT_MAX_MEMORY_MB,
        use_disk_cache: bool = True,
        disk_ttl_days: float | None = None,
        max_connections: int = 0,
    ) -> None:
        import os

        if max_connections < 0:
            raise ValueError(
                f"max_connections must be >= 0 (0 = unlimited), got {max_connections}"
            )
        self.jobs = (os.cpu_count() or 1) if jobs is None else jobs
        self.cache = TwoTierCache(
            cache_dir,
            max_memory_mb=max_memory_mb,
            use_disk=use_disk_cache,
            disk_ttl_days=disk_ttl_days,
        )
        self.max_connections = max_connections
        self.active_connections = 0
        self.shed_connections = 0
        self.started = time.monotonic()
        self.requests: dict[str, int] = {}
        self._inflight: dict[str, asyncio.Future] = {}
        self._pool: Executor | None = None

    # -- lifecycle -------------------------------------------------------

    def _executor(self) -> Executor:
        if self._pool is None:
            if self.jobs <= 0:
                self._pool = ThreadPoolExecutor(max_workers=4)
            else:
                # Workers fork lazily, *after* the event loop is running —
                # the default fork start method can inherit a locked lock
                # from the loop's internals and deadlock the child, so the
                # service always spawns fresh interpreters.
                import multiprocessing

                self._pool = ProcessPoolExecutor(
                    max_workers=self.jobs,
                    mp_context=multiprocessing.get_context("spawn"),
                )
        return self._pool

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None
        self.cache.close()

    # -- bookkeeping -----------------------------------------------------

    def _count(self, endpoint: str) -> None:
        self.requests[endpoint] = self.requests.get(endpoint, 0) + 1

    def connection_opened(self) -> bool:
        """Admit (or shed) one incoming connection.

        Returns ``False`` — and counts the shed — when the
        ``max_connections`` limit is reached; the HTTP layer answers
        such connections with a structured 503 and closes them.  A
        ``True`` return must be balanced by :meth:`connection_closed`.
        """
        if self.max_connections and self.active_connections >= self.max_connections:
            self.shed_connections += 1
            return False
        self.active_connections += 1
        return True

    def connection_closed(self) -> None:
        self.active_connections -= 1

    @property
    def uptime_s(self) -> float:
        return time.monotonic() - self.started

    def health(self) -> dict:
        from .. import __version__

        self._count("healthz")
        return {
            "status": "ok",
            "uptime_s": round(self.uptime_s, 3),
            "version": __version__,
        }

    def stats(self) -> dict:
        self._count("stats")
        return {
            "uptime_s": round(self.uptime_s, 3),
            "requests": dict(sorted(self.requests.items())),
            "cache": self.cache.to_dict(),
            "connections": {
                "active": self.active_connections,
                "limit": self.max_connections,
                "shed": self.shed_connections,
            },
            "workers": self.jobs,
        }

    # -- the core: cached, coalesced execution ---------------------------

    async def result_bytes(self, job: Job) -> tuple[bytes, str]:
        """Canonical result bytes for *job* plus how they were obtained
        (``memory`` / ``disk`` / ``coalesced`` / ``miss``).

        This is the coalescing point: concurrent calls with the same
        ``job.key`` share one execution and receive identical bytes.
        """
        cached = await self.cache.get_async(job.key)
        if cached is not None:
            return cached
        inflight = self._inflight.get(job.key)
        if inflight is not None:
            payload = await asyncio.shield(inflight)
            self.cache.stats.coalesced += 1
            return payload, "coalesced"
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._inflight[job.key] = future
        started = time.perf_counter()
        try:
            result = await loop.run_in_executor(
                self._executor(),
                _execute_job,
                job.kind,
                job.workload,
                job.machine,
                job.compiler,
                job.physics,
            )
        except Exception as error:
            if not future.cancelled():
                future.set_exception(
                    ServeExecutionError(f"{job.workload} failed: {error}")
                )
                # The exception is delivered to every coalesced waiter (or
                # nobody); either way it is not "unretrieved".
                future.exception()
            raise ServeExecutionError(
                f"executing {job.workload} on {job.machine} with "
                f"{job.compiler} failed: {error}"
            ) from error
        else:
            payload = canonical_bytes(result)
            # Resolve the coalesced waiters before the (off-loop) disk
            # write — they only need the bytes, not the persistence.
            if not future.cancelled():
                future.set_result(payload)
            await self.cache.put_async(job.key, payload, time.perf_counter() - started)
            return payload, "miss"
        finally:
            self._inflight.pop(job.key, None)
            if not future.done():
                # Only reachable when the leading call was torn down by
                # CancelledError (which bypasses `except Exception`),
                # e.g. executor shutdown: cancel the future so coalesced
                # waiters shielding on it are released instead of
                # hanging forever.
                future.cancel()

    # -- endpoint handlers ----------------------------------------------

    async def compile(self, payload) -> dict:
        """``POST /compile``: one report, validated against REPORT_SCHEMA."""
        self._count("compile")
        job = parse_job("compile", payload)
        started = time.perf_counter()
        result, state = await self.result_bytes(job)
        return {
            "job": job.to_dict(),
            "cache": state,
            "elapsed_ms": round((time.perf_counter() - started) * 1000.0, 3),
            "report": json.loads(result),
        }

    async def trace(self, payload) -> dict:
        """``POST /trace``: the schedule's timed op records."""
        self._count("trace")
        job = parse_job("trace", payload)
        started = time.perf_counter()
        result, state = await self.result_bytes(job)
        return {
            "job": job.to_dict(),
            "cache": state,
            "elapsed_ms": round((time.perf_counter() - started) * 1000.0, 3),
            "trace": json.loads(result),
        }

    async def compare(self, payload) -> dict:
        """``POST /compare``: the paper suite as parallel compile sub-jobs.

        Every suite compiler becomes an ordinary ``compile`` job keyed on
        its own (circuit hash, specs) tuple, so comparison rows share the
        cache — and the coalescer — with plain ``/compile`` traffic.
        """
        self._count("compare")
        if isinstance(payload, dict) and "grid" in payload:
            payload = dict(payload)
            grid_spec = payload.pop("grid")
            if not isinstance(grid_spec, str) or not grid_spec.strip():
                raise JobError(
                    f"field 'grid' must be a machine spec string, got {grid_spec!r}",
                    field="grid",
                )
            try:
                grid_spec = canonical_machine_spec(grid_spec.strip())
            except ValueError as error:
                raise JobError(f"bad machine spec: {error}", field="grid") from None
        else:
            grid_spec = canonical_machine_spec(DEFAULT_GRID)
        if isinstance(payload, dict) and "compiler" in payload:
            raise JobError(
                "compare runs the registered paper suite; "
                "it does not accept a 'compiler' field",
                field="compiler",
            )
        base = parse_job(
            "compare",
            payload,
            allowed_fields=("workload", "machine", "physics"),
        )
        registry = default_registry()
        started = time.perf_counter()
        sub_jobs: list[Job] = []
        for name in registry.paper_suite():
            entry = registry.entry(name)
            machine = grid_spec if entry.machine_family == "grid" else base.machine
            sub_jobs.append(
                Job(
                    kind="compile",
                    workload=base.workload,
                    machine=machine,
                    compiler=name,
                    physics=base.physics,
                    circuit_hash=base.circuit_hash,
                )
            )
        results = await asyncio.gather(*(self.result_bytes(job) for job in sub_jobs))
        rows = [
            {
                "compiler": job.compiler,
                "machine": job.machine,
                "cache": state,
                "report": json.loads(result),
            }
            for job, (result, state) in zip(sub_jobs, results)
        ]
        return {
            "job": base.to_dict(),
            "elapsed_ms": round((time.perf_counter() - started) * 1000.0, 3),
            "rows": rows,
        }


#: Re-exported defaults the CLI surfaces in ``--help``.
__all__ = [
    "CompileService",
    "DEFAULT_GRID",
    "DEFAULTS",
    "ServeExecutionError",
    "_execute_job",
]
