"""Metrics registry + Prometheus text exposition for ``repro serve``.

A deliberately small, stdlib-only metrics layer: three instrument kinds
(:class:`Counter`, :class:`Gauge`, :class:`Histogram` with fixed
buckets) collected by a :class:`MetricsRegistry` that renders the
Prometheus *text exposition format* (version 0.0.4) served at
``GET /metrics``::

    # HELP repro_serve_requests_total Requests by endpoint and status.
    # TYPE repro_serve_requests_total counter
    repro_serve_requests_total{endpoint="/compile",status="200"} 12
    # TYPE repro_serve_request_seconds histogram
    repro_serve_request_seconds_bucket{endpoint="/compile",le="0.05"} 9
    ...

Counters and gauges may be *callback-backed* (``fn=...``): the value is
read at render time from live service state (cache counters, connection
gauges, queue depth), so ``/metrics`` can never drift from ``/stats``.

:func:`validate_exposition` is the schema check of this format — it
parses a rendered page back into metric families and raises
:class:`ValueError` on any malformed line, missing ``# TYPE``,
non-monotonic histogram buckets, or a histogram without ``+Inf`` — and
is what the tests and the CI serve-smoke job run against a live scrape.

The service is single-threaded (asyncio) at every instrumentation
point, so the instruments are deliberately lock-free.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass

#: Fixed latency buckets in seconds (Prometheus convention), spanning
#: sub-ms cache hits to multi-second cold compiles; ``+Inf`` implied.
DEFAULT_LATENCY_BUCKETS_S = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0
)

_METRIC_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def _escape_label_value(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def format_labels(labels: dict) -> str:
    """``{a="x",b="y"}`` (keys sorted), or ``""`` when empty."""
    if not labels:
        return ""
    inner = ",".join(
        f'{name}="{_escape_label_value(str(value))}"'
        for name, value in sorted(labels.items())
    )
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


class _Metric:
    """Shared name/label bookkeeping of the three instrument kinds."""

    kind = "untyped"

    def __init__(self, name: str, help_text: str, *, labels: tuple = ()) -> None:
        if not _METRIC_NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        for label in labels:
            if not _LABEL_NAME_RE.match(label) or label == "le":
                raise ValueError(f"invalid label name {label!r} on {name!r}")
        self.name = name
        self.help_text = help_text
        self.labels = tuple(labels)

    def _key(self, label_values: dict) -> tuple:
        if set(label_values) != set(self.labels):
            raise ValueError(
                f"metric {self.name!r} takes labels {self.labels}, "
                f"got {tuple(sorted(label_values))}"
            )
        return tuple(str(label_values[name]) for name in self.labels)

    def _labels_dict(self, key: tuple) -> dict:
        return dict(zip(self.labels, key))


class Counter(_Metric):
    """Monotonically increasing count; optionally callback-backed."""

    kind = "counter"

    def __init__(self, name, help_text, *, labels=(), fn=None) -> None:
        super().__init__(name, help_text, labels=labels)
        if fn is not None and labels:
            raise ValueError(f"callback-backed counter {name!r} cannot take labels")
        self._fn = fn
        self._values: dict[tuple, float] = {}

    def inc(self, amount: float = 1.0, **labels) -> None:
        if self._fn is not None:
            raise ValueError(f"counter {self.name!r} is callback-backed")
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (inc {amount})")
        key = self._key(labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels) -> float:
        if self._fn is not None:
            return float(self._fn())
        return self._values.get(self._key(labels), 0.0)

    def samples(self) -> list[tuple[dict, float]]:
        if self._fn is not None:
            return [({}, float(self._fn()))]
        return [(self._labels_dict(key), value) for key, value in self._values.items()]

    def render(self) -> list[str]:
        return [
            f"{self.name}{format_labels(labels)} {_format_value(value)}"
            for labels, value in self.samples()
        ]


class Gauge(_Metric):
    """A value that can go up and down; optionally callback-backed."""

    kind = "gauge"

    def __init__(self, name, help_text, *, labels=(), fn=None) -> None:
        super().__init__(name, help_text, labels=labels)
        if fn is not None and labels:
            raise ValueError(f"callback-backed gauge {name!r} cannot take labels")
        self._fn = fn
        self._values: dict[tuple, float] = {}

    def set(self, value: float, **labels) -> None:
        if self._fn is not None:
            raise ValueError(f"gauge {self.name!r} is callback-backed")
        self._values[self._key(labels)] = float(value)

    def value(self, **labels) -> float:
        if self._fn is not None:
            return float(self._fn())
        return self._values.get(self._key(labels), 0.0)

    def samples(self) -> list[tuple[dict, float]]:
        if self._fn is not None:
            return [({}, float(self._fn()))]
        return [(self._labels_dict(key), value) for key, value in self._values.items()]

    def render(self) -> list[str]:
        return [
            f"{self.name}{format_labels(labels)} {_format_value(value)}"
            for labels, value in self.samples()
        ]


@dataclass
class _HistogramState:
    counts: list[int]
    total: float = 0.0
    count: int = 0


class Histogram(_Metric):
    """Fixed-bucket histogram (cumulative ``le`` buckets + sum/count)."""

    kind = "histogram"

    def __init__(
        self,
        name,
        help_text,
        *,
        labels=(),
        buckets: tuple = DEFAULT_LATENCY_BUCKETS_S,
    ) -> None:
        super().__init__(name, help_text, labels=labels)
        bounds = tuple(float(bound) for bound in buckets)
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise ValueError(
                f"histogram {name!r} buckets must be strictly increasing, got {buckets}"
            )
        self.buckets = bounds
        self._states: dict[tuple, _HistogramState] = {}

    def observe(self, value: float, **labels) -> None:
        key = self._key(labels)
        state = self._states.get(key)
        if state is None:
            state = self._states[key] = _HistogramState([0] * (len(self.buckets) + 1))
        # Cumulative buckets: an observation lands in every bucket whose
        # upper bound admits it (the exposition-format contract).
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                state.counts[index] += 1
        state.counts[-1] += 1  # +Inf
        state.total += value
        state.count += 1

    def state(self, **labels) -> _HistogramState | None:
        return self._states.get(self._key(labels))

    def render(self) -> list[str]:
        lines = []
        for key, state in self._states.items():
            labels = self._labels_dict(key)
            for bound, count in zip(self.buckets, state.counts):
                lines.append(
                    f"{self.name}_bucket"
                    f"{format_labels({**labels, 'le': _format_value(bound)})} {count}"
                )
            lines.append(
                f"{self.name}_bucket{format_labels({**labels, 'le': '+Inf'})} "
                f"{state.counts[-1]}"
            )
            lines.append(
                f"{self.name}_sum{format_labels(labels)} {_format_value(state.total)}"
            )
            lines.append(f"{self.name}_count{format_labels(labels)} {state.count}")
        return lines


class MetricsRegistry:
    """Ordered collection of instruments rendering one exposition page."""

    #: The Content-Type of the rendered page.
    CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

    def __init__(self) -> None:
        self._metrics: dict[str, _Metric] = {}

    def _register(self, metric: _Metric) -> _Metric:
        if metric.name in self._metrics:
            raise ValueError(f"metric {metric.name!r} already registered")
        self._metrics[metric.name] = metric
        return metric

    def counter(self, name, help_text, *, labels=(), fn=None) -> Counter:
        return self._register(Counter(name, help_text, labels=labels, fn=fn))

    def gauge(self, name, help_text, *, labels=(), fn=None) -> Gauge:
        return self._register(Gauge(name, help_text, labels=labels, fn=fn))

    def histogram(
        self, name, help_text, *, labels=(), buckets=DEFAULT_LATENCY_BUCKETS_S
    ) -> Histogram:
        return self._register(Histogram(name, help_text, labels=labels, buckets=buckets))

    def get(self, name: str) -> _Metric:
        return self._metrics[name]

    def render(self) -> str:
        """The full Prometheus text exposition page."""
        lines: list[str] = []
        for metric in self._metrics.values():
            lines.append(f"# HELP {metric.name} {metric.help_text}")
            lines.append(f"# TYPE {metric.name} {metric.kind}")
            lines.extend(metric.render())
        return "\n".join(lines) + "\n"


# -- exposition-format validation (the /metrics "schema test") ----------

_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>[^ ]+)$"
)
_LABEL_PAIR_RE = re.compile(
    r'^(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"$'
)


def _parse_sample_value(text: str) -> float:
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    try:
        return float(text)
    except ValueError:
        raise ValueError(f"bad sample value {text!r}") from None


def _parse_labels(text: str) -> dict:
    labels: dict = {}
    if not text:
        return labels
    for pair in re.split(r",(?=[a-zA-Z_])", text):
        match = _LABEL_PAIR_RE.match(pair)
        if not match:
            raise ValueError(f"malformed label pair {pair!r}")
        labels[match.group("name")] = match.group("value")
    return labels


def validate_exposition(text: str) -> dict:
    """Parse + validate a Prometheus text exposition page.

    Returns ``{family_name: {"type": ..., "help": ..., "samples":
    [(labels, value), ...]}}``.  Raises :class:`ValueError` on any
    malformed line, a sample without a preceding ``# TYPE``, a sample
    name that does not belong to its family (histograms own their
    ``_bucket``/``_sum``/``_count`` suffixes), a histogram label set
    missing the ``+Inf`` bucket, or non-monotonic cumulative buckets.
    """
    families: dict[str, dict] = {}
    current: str | None = None
    for number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            parts = line.split(" ", 3)
            if len(parts) < 4:
                raise ValueError(f"line {number}: malformed HELP line {line!r}")
            families.setdefault(
                parts[2], {"type": None, "help": None, "samples": []}
            )["help"] = parts[3]
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4 or parts[3] not in (
                "counter", "gauge", "histogram", "summary", "untyped"
            ):
                raise ValueError(f"line {number}: malformed TYPE line {line!r}")
            family = families.setdefault(
                parts[2], {"type": None, "help": None, "samples": []}
            )
            family["type"] = parts[3]
            current = parts[2]
            continue
        if line.startswith("#"):
            continue  # comment
        match = _SAMPLE_RE.match(line)
        if not match:
            raise ValueError(f"line {number}: malformed sample line {line!r}")
        name = match.group("name")
        family_name = current
        if family_name is None or not name.startswith(family_name):
            # A sample must belong to the family announced by # TYPE.
            raise ValueError(
                f"line {number}: sample {name!r} outside a # TYPE family"
            )
        suffix = name[len(family_name):]
        family = families[family_name]
        if family["type"] == "histogram":
            if suffix not in ("_bucket", "_sum", "_count"):
                raise ValueError(
                    f"line {number}: bad histogram sample suffix {suffix!r}"
                )
        elif suffix:
            raise ValueError(
                f"line {number}: unexpected sample suffix {suffix!r} on "
                f"{family['type']} family {family_name!r}"
            )
        labels = _parse_labels(match.group("labels") or "")
        value = _parse_sample_value(match.group("value"))
        family["samples"].append((name, labels, value))
    for family_name, family in families.items():
        if family["type"] is None:
            raise ValueError(f"family {family_name!r} has samples but no # TYPE")
        if family["type"] == "histogram":
            _validate_histogram_family(family_name, family["samples"])
    return families


def _validate_histogram_family(name: str, samples: list) -> None:
    by_series: dict[tuple, list[tuple[float, float]]] = {}
    for sample_name, labels, value in samples:
        if not sample_name.endswith("_bucket"):
            continue
        if "le" not in labels:
            raise ValueError(f"histogram {name!r} bucket sample without 'le'")
        series = tuple(sorted(
            (key, val) for key, val in labels.items() if key != "le"
        ))
        by_series.setdefault(series, []).append(
            (_parse_sample_value(labels["le"]), value)
        )
    for series, buckets in by_series.items():
        buckets.sort(key=lambda pair: pair[0])
        if not buckets or buckets[-1][0] != math.inf:
            raise ValueError(
                f"histogram {name!r} series {dict(series)} lacks an +Inf bucket"
            )
        counts = [count for _, count in buckets]
        if any(b < a for a, b in zip(counts, counts[1:])):
            raise ValueError(
                f"histogram {name!r} series {dict(series)} has "
                "non-monotonic cumulative buckets"
            )
