"""Minimal asyncio HTTP/1.1 front-end of the compilation service.

Stdlib-only by design (the whole package is): a hand-rolled HTTP/1.1
request reader over ``asyncio.start_server`` streams — request line,
headers, ``Content-Length``-framed JSON bodies, keep-alive — which is
exactly the subset a JSON job API needs, and nothing more.  Routes:

=====================  ====================================================
``GET /healthz``       liveness: ``{"status": "ok", ...}``
``GET /stats``         request counters + both cache tiers + coalesce count
``GET /metrics``       Prometheus text exposition (latency histograms, ...)
``GET /trace/recent``  bounded ring of finished request traces
``POST /compile``      one job -> REPORT_SCHEMA-validated report
``POST /trace``        one job -> timed op records
``POST /compare``      the paper suite as cached/coalesced sub-jobs
=====================  ====================================================

Framing is strict because a desynced keep-alive stream is a request-
smuggling primitive: ``Transfer-Encoding`` is rejected with a 501 (the
service only speaks ``Content-Length`` framing), duplicate or
conflicting ``Content-Length`` headers are a 400, and every framing
error closes the connection after one structured response.  The HTTP
version is honored: an HTTP/1.0 request defaults to ``Connection:
close`` unless it asks for keep-alive.

Observability: every request gets a trace id (an inbound
``X-Request-Id`` is honored) echoed in the response header and body
metadata; per-client backpressure answers excess load with a structured
429 + ``Retry-After`` instead of letting one client starve the pool.

Every error — malformed JSON, unknown route, oversized body, a bad spec
string — is a structured :data:`~repro.serve.schemas.ERROR_SCHEMA` body
with the matching status code; tracebacks never reach the wire.
"""

from __future__ import annotations

import asyncio
import json
import math
import time

from .jobs import JobError
from .service import CompileService, ServeExecutionError
from .tracing import RequestTrace

#: Reject request bodies beyond this many bytes (a job payload is tiny).
MAX_BODY_BYTES = 1 << 20

#: Reject header sections beyond this many bytes.
MAX_HEADER_BYTES = 1 << 16

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    501: "Not Implemented",
    503: "Service Unavailable",
    505: "HTTP Version Not Supported",
}


class _HttpError(Exception):
    """Internal: aborts request handling with a structured error body."""

    def __init__(
        self,
        status: int,
        message: str,
        *,
        field: str | None = None,
        retry_after: float | None = None,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.message = message
        self.field = field
        self.retry_after = retry_after


class _TextResponse:
    """A non-JSON 200 body (the ``/metrics`` exposition page)."""

    def __init__(self, body: str, content_type: str) -> None:
        self.body = body.encode()
        self.content_type = content_type


def error_body(
    status: int,
    message: str,
    field: str | None = None,
    retry_after: float | None = None,
) -> dict:
    """The one error payload shape (see ``ERROR_SCHEMA``)."""
    error: dict = {"status": status, "message": message}
    if field is not None:
        error["field"] = field
    if retry_after is not None:
        error["retry_after_s"] = round(retry_after, 3)
    return {"error": error}


def _encode_raw(
    status: int,
    body: bytes,
    content_type: str,
    *,
    keep_alive: bool,
    extra_headers: dict | None = None,
) -> bytes:
    lines = [
        f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    for name, value in (extra_headers or {}).items():
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode() + body


def _encode_response(
    status: int,
    payload: dict,
    *,
    keep_alive: bool,
    extra_headers: dict | None = None,
) -> bytes:
    body = json.dumps(payload, sort_keys=True, separators=(",", ":")).encode()
    return _encode_raw(
        status,
        body,
        "application/json",
        keep_alive=keep_alive,
        extra_headers=extra_headers,
    )


async def _read_request(
    reader: asyncio.StreamReader,
) -> tuple[str, str, str, dict[str, str], bytes] | None:
    """Read one request; ``None`` when the client closed the connection."""
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as error:
        if not error.partial.strip():
            return None
        raise _HttpError(400, "truncated HTTP request") from None
    except asyncio.LimitOverrunError:
        raise _HttpError(413, "request headers too large") from None
    if len(head) > MAX_HEADER_BYTES:
        raise _HttpError(413, "request headers too large")
    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3:
        raise _HttpError(400, f"malformed request line {lines[0]!r}")
    method, target, version = parts
    if version not in ("HTTP/1.0", "HTTP/1.1"):
        raise _HttpError(505, f"unsupported protocol version {version!r}")
    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise _HttpError(400, f"malformed header line {line!r}")
        name = name.strip().lower()
        value = value.strip()
        if name == "content-length" and name in headers:
            # Duplicate Content-Length headers are a request-smuggling
            # primitive: a silent last-win would let two parsers in the
            # path disagree on where the body ends.
            kind = "conflicting" if headers[name] != value else "duplicate"
            raise _HttpError(400, f"{kind} Content-Length headers")
        headers[name] = value
    if "transfer-encoding" in headers:
        # A chunked body would otherwise be read as Content-Length: 0 and
        # its bytes replayed as the next request line on the keep-alive
        # stream — reject the framing this parser does not speak.
        raise _HttpError(
            501,
            f"Transfer-Encoding {headers['transfer-encoding']!r} is not "
            "supported; send a Content-Length-framed body",
        )
    length_text = headers.get("content-length", "0")
    try:
        length = int(length_text)
    except ValueError:
        raise _HttpError(400, f"bad Content-Length {length_text!r}") from None
    if length < 0 or length > MAX_BODY_BYTES:
        raise _HttpError(413, f"request body of {length} bytes exceeds {MAX_BODY_BYTES}")
    try:
        body = await reader.readexactly(length) if length else b""
    except asyncio.IncompleteReadError:
        raise _HttpError(400, "truncated request body") from None
    return method, target.split("?", 1)[0], version, headers, body


def _parse_json_body(body: bytes) -> dict:
    if not body:
        raise _HttpError(400, "request body must be a JSON object, got nothing")
    try:
        return json.loads(body)
    except json.JSONDecodeError as error:
        raise _HttpError(400, f"request body is not valid JSON: {error}") from None


_ROUTE_LIST = (
    "/healthz, /stats, /metrics, /trace/recent, /compile, /trace, /compare"
)


async def _dispatch(
    service: CompileService,
    method: str,
    path: str,
    body: bytes,
    trace: RequestTrace,
    client: str,
):
    gets = {
        "/healthz": service.health,
        "/stats": service.stats,
        "/trace/recent": service.trace_recent,
    }
    if path in gets:
        if method != "GET":
            raise _HttpError(405, f"{path} only supports GET")
        return gets[path]()
    if path == "/metrics":
        if method != "GET":
            raise _HttpError(405, f"{path} only supports GET")
        return _TextResponse(service.metrics_text(), service.metrics.CONTENT_TYPE)
    handlers = {
        "/compile": service.compile,
        "/trace": service.trace,
        "/compare": service.compare,
    }
    handler = handlers.get(path)
    if handler is None:
        raise _HttpError(404, f"unknown path {path!r} (routes: {_ROUTE_LIST})")
    if method != "POST":
        raise _HttpError(405, f"{path} only supports POST")
    # Per-client backpressure gates the compute endpoints *before* any
    # parsing: shedding must stay cheap, and ops endpoints (health,
    # stats, metrics) stay reachable even for a throttled client.
    retry_after = service.admit_request(client)
    if retry_after is not None:
        raise _HttpError(
            429,
            f"client {client} is over its per-client limit; retry after "
            f"{retry_after:.3f}s",
            retry_after=retry_after,
        )
    try:
        return await handler(_parse_json_body(body), trace=trace)
    except JobError as error:
        raise _HttpError(400, error.message, field=error.field) from None
    except ServeExecutionError as error:
        raise _HttpError(500, str(error)) from None
    finally:
        service.release_request(client)


async def _handle_connection(
    service: CompileService,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
) -> None:
    peer = writer.get_extra_info("peername")
    client = peer[0] if isinstance(peer, tuple) and peer else "unknown"
    if not service.connection_opened():
        # Over the --max-connections limit: shed with one structured
        # 503 instead of queueing behind connections we cannot serve.
        payload = error_body(
            503,
            f"connection limit of {service.max_connections} reached, "
            "try again later",
        )
        try:
            writer.write(_encode_response(503, payload, keep_alive=False))
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
        return
    try:
        while True:
            keep_alive = True
            framed = False
            trace: RequestTrace | None = None
            retry_after: float | None = None
            started = time.perf_counter()
            try:
                request = await _read_request(reader)
                if request is None:
                    break
                started = time.perf_counter()  # excludes keep-alive idle time
                framed = True
                method, path, version, headers, body = request
                trace = RequestTrace.begin(
                    endpoint=path,
                    method=method,
                    client=client,
                    request_id=headers.get("x-request-id"),
                )
                connection = headers.get("connection", "").lower()
                if version == "HTTP/1.0":
                    # HTTP/1.0 defaults to close; keep-alive is opt-in.
                    keep_alive = connection == "keep-alive"
                else:
                    keep_alive = connection != "close"
                payload = await _dispatch(service, method, path, body, trace, client)
                status = 200
            except _HttpError as error:
                payload = error_body(
                    error.status, error.message, error.field, error.retry_after
                )
                status = error.status
                retry_after = error.retry_after
                if not framed:
                    # A framing error (oversized/truncated headers or
                    # body, chunked or duplicate Content-Length, bad
                    # version) leaves the stream in an unknown position —
                    # re-reading it would replay the same error forever,
                    # so the connection must die after the one structured
                    # error response.
                    keep_alive = False
            except Exception as error:  # a bug, but never a traceback on the wire
                payload = error_body(500, f"internal error: {error}")
                status = 500
                keep_alive = False
            extra_headers: dict = {}
            if trace is not None:
                extra_headers["X-Request-Id"] = trace.trace_id
            if retry_after is not None:
                extra_headers["Retry-After"] = str(max(1, math.ceil(retry_after)))
            if isinstance(payload, _TextResponse):
                writer.write(
                    _encode_raw(
                        status,
                        payload.body,
                        payload.content_type,
                        keep_alive=keep_alive,
                        extra_headers=extra_headers,
                    )
                )
            else:
                writer.write(
                    _encode_response(
                        status,
                        payload,
                        keep_alive=keep_alive,
                        extra_headers=extra_headers,
                    )
                )
            await writer.drain()
            if trace is None:
                # Framing errors abort before a trace exists; they still
                # count in the metrics and show up in the ring.
                trace = RequestTrace.begin(endpoint="unframed", client=client)
            service.finish_request(trace, status, time.perf_counter() - started)
            if not keep_alive:
                break
    except (ConnectionResetError, BrokenPipeError):
        pass
    finally:
        service.connection_closed()
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass


async def start_http_server(
    service: CompileService, host: str = "127.0.0.1", port: int = 0
) -> asyncio.AbstractServer:
    """Bind and start serving; ``port=0`` picks an ephemeral port
    (read it back from ``server.sockets[0].getsockname()``)."""

    async def handler(reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        await _handle_connection(service, reader, writer)

    return await asyncio.start_server(
        handler, host, port, limit=MAX_HEADER_BYTES + MAX_BODY_BYTES
    )


async def run_server(
    service: CompileService,
    host: str = "127.0.0.1",
    port: int = 8000,
    *,
    ready: "asyncio.Event | None" = None,
    announce=None,
) -> None:
    """Serve until cancelled (or SIGTERM/SIGINT on platforms that allow
    signal handlers); used by ``repro serve``."""
    import signal

    server = await start_http_server(service, host, port)
    bound = server.sockets[0].getsockname()
    if announce is not None:
        announce(f"serving on http://{bound[0]}:{bound[1]} "
                 f"(workers: {service.jobs}, routes: /healthz /stats /metrics "
                 "/trace/recent /compile /trace /compare)")
    if ready is not None:
        ready.set()
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(signum, stop.set)
        except (NotImplementedError, RuntimeError):  # e.g. non-main thread
            pass
    try:
        await stop.wait()
    finally:
        server.close()
        await server.wait_closed()
        service.close()
