"""Minimal asyncio HTTP/1.1 front-end of the compilation service.

Stdlib-only by design (the whole package is): a hand-rolled HTTP/1.1
request reader over ``asyncio.start_server`` streams — request line,
headers, ``Content-Length``-framed JSON bodies, keep-alive — which is
exactly the subset a JSON job API needs, and nothing more.  Routes:

====================  =====================================================
``GET /healthz``      liveness: ``{"status": "ok", ...}``
``GET /stats``        request counters + both cache tiers + coalesce count
``POST /compile``     one job -> REPORT_SCHEMA-validated report
``POST /trace``       one job -> timed op records
``POST /compare``     the paper suite as cached/coalesced sub-jobs
====================  =====================================================

Every error — malformed JSON, unknown route, oversized body, a bad spec
string — is a structured :data:`~repro.serve.schemas.ERROR_SCHEMA` body
with the matching status code; tracebacks never reach the wire.
"""

from __future__ import annotations

import asyncio
import json

from .jobs import JobError
from .service import CompileService, ServeExecutionError

#: Reject request bodies beyond this many bytes (a job payload is tiny).
MAX_BODY_BYTES = 1 << 20

#: Reject header sections beyond this many bytes.
MAX_HEADER_BYTES = 1 << 16

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class _HttpError(Exception):
    """Internal: aborts request handling with a structured error body."""

    def __init__(self, status: int, message: str, *, field: str | None = None) -> None:
        super().__init__(message)
        self.status = status
        self.message = message
        self.field = field


def error_body(status: int, message: str, field: str | None = None) -> dict:
    """The one error payload shape (see ``ERROR_SCHEMA``)."""
    error: dict = {"status": status, "message": message}
    if field is not None:
        error["field"] = field
    return {"error": error}


def _encode_response(status: int, payload: dict, *, keep_alive: bool) -> bytes:
    body = json.dumps(payload, sort_keys=True, separators=(",", ":")).encode()
    head = (
        f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
        "Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
        "\r\n"
    ).encode()
    return head + body


async def _read_request(
    reader: asyncio.StreamReader,
) -> tuple[str, str, dict[str, str], bytes] | None:
    """Read one request; ``None`` when the client closed the connection."""
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as error:
        if not error.partial.strip():
            return None
        raise _HttpError(400, "truncated HTTP request") from None
    except asyncio.LimitOverrunError:
        raise _HttpError(413, "request headers too large") from None
    if len(head) > MAX_HEADER_BYTES:
        raise _HttpError(413, "request headers too large")
    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3:
        raise _HttpError(400, f"malformed request line {lines[0]!r}")
    method, target, _version = parts
    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise _HttpError(400, f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()
    length_text = headers.get("content-length", "0")
    try:
        length = int(length_text)
    except ValueError:
        raise _HttpError(400, f"bad Content-Length {length_text!r}") from None
    if length < 0 or length > MAX_BODY_BYTES:
        raise _HttpError(413, f"request body of {length} bytes exceeds {MAX_BODY_BYTES}")
    try:
        body = await reader.readexactly(length) if length else b""
    except asyncio.IncompleteReadError:
        raise _HttpError(400, "truncated request body") from None
    return method, target.split("?", 1)[0], headers, body


def _parse_json_body(body: bytes) -> dict:
    if not body:
        raise _HttpError(400, "request body must be a JSON object, got nothing")
    try:
        return json.loads(body)
    except json.JSONDecodeError as error:
        raise _HttpError(400, f"request body is not valid JSON: {error}") from None


async def _dispatch(service: CompileService, method: str, path: str, body: bytes) -> dict:
    if path == "/healthz":
        if method != "GET":
            raise _HttpError(405, f"{path} only supports GET")
        return service.health()
    if path == "/stats":
        if method != "GET":
            raise _HttpError(405, f"{path} only supports GET")
        return service.stats()
    handlers = {
        "/compile": service.compile,
        "/trace": service.trace,
        "/compare": service.compare,
    }
    handler = handlers.get(path)
    if handler is None:
        raise _HttpError(404, f"unknown path {path!r} (routes: /healthz, /stats, "
                              "/compile, /trace, /compare)")
    if method != "POST":
        raise _HttpError(405, f"{path} only supports POST")
    try:
        return await handler(_parse_json_body(body))
    except JobError as error:
        raise _HttpError(400, error.message, field=error.field) from None
    except ServeExecutionError as error:
        raise _HttpError(500, str(error)) from None


async def _handle_connection(
    service: CompileService,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
) -> None:
    if not service.connection_opened():
        # Over the --max-connections limit: shed with one structured
        # 503 instead of queueing behind connections we cannot serve.
        payload = error_body(
            503,
            f"connection limit of {service.max_connections} reached, "
            "try again later",
        )
        try:
            writer.write(_encode_response(503, payload, keep_alive=False))
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
        return
    try:
        while True:
            keep_alive = True
            framed = False
            try:
                request = await _read_request(reader)
                if request is None:
                    break
                framed = True
                method, path, headers, body = request
                keep_alive = headers.get("connection", "keep-alive").lower() != "close"
                payload = await _dispatch(service, method, path, body)
                status = 200
            except _HttpError as error:
                payload = error_body(error.status, error.message, error.field)
                status = error.status
                if not framed:
                    # A framing error (oversized/truncated headers or
                    # body, bad Content-Length) leaves the stream in an
                    # unknown position — re-reading it would replay the
                    # same error forever, so the connection must die
                    # after the one structured error response.
                    keep_alive = False
            except Exception as error:  # a bug, but never a traceback on the wire
                payload = error_body(500, f"internal error: {error}")
                status = 500
                keep_alive = False
            writer.write(_encode_response(status, payload, keep_alive=keep_alive))
            await writer.drain()
            if not keep_alive:
                break
    except (ConnectionResetError, BrokenPipeError):
        pass
    finally:
        service.connection_closed()
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass


async def start_http_server(
    service: CompileService, host: str = "127.0.0.1", port: int = 0
) -> asyncio.AbstractServer:
    """Bind and start serving; ``port=0`` picks an ephemeral port
    (read it back from ``server.sockets[0].getsockname()``)."""

    async def handler(reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        await _handle_connection(service, reader, writer)

    return await asyncio.start_server(
        handler, host, port, limit=MAX_HEADER_BYTES + MAX_BODY_BYTES
    )


async def run_server(
    service: CompileService,
    host: str = "127.0.0.1",
    port: int = 8000,
    *,
    ready: "asyncio.Event | None" = None,
    announce=None,
) -> None:
    """Serve until cancelled (or SIGTERM/SIGINT on platforms that allow
    signal handlers); used by ``repro serve``."""
    import signal

    server = await start_http_server(service, host, port)
    bound = server.sockets[0].getsockname()
    if announce is not None:
        announce(f"serving on http://{bound[0]}:{bound[1]} "
                 f"(workers: {service.jobs}, routes: /healthz /stats /compile "
                 "/trace /compare)")
    if ready is not None:
        ready.set()
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(signum, stop.set)
        except (NotImplementedError, RuntimeError):  # e.g. non-main thread
            pass
    try:
        await stop.wait()
    finally:
        server.close()
        await server.wait_closed()
        service.close()
