"""``repro serve``: an async compilation service with multi-tier caching.

Every spec in this repository is a canonical, picklable string
(compiler x machine x physics registries) and every result a
schema-validated payload — so serving compilation as a long-running
HTTP service is a thin layer:

* :mod:`~repro.serve.jobs` — request canonicalisation: payloads become
  :class:`Job` values keyed on (circuit content hash, canonical specs),
* :mod:`~repro.serve.service` — :class:`CompileService`: a
  ``ProcessPoolExecutor`` worker pool, request coalescing (N concurrent
  identical jobs -> one execution), the two-tier cache, and the
  per-client :class:`ClientLimiter` backpressure gate,
* :mod:`~repro.serve.cache` — bounded in-memory LRU over the on-disk
  ``~/.cache/repro-bench`` store, with ``/stats`` counters,
* :mod:`~repro.serve.tracing` — per-request trace ids and span timings
  plus the bounded ``GET /trace/recent`` ring,
* :mod:`~repro.serve.metrics` — the stdlib counter/gauge/histogram
  registry behind the ``GET /metrics`` Prometheus text exposition,
* :mod:`~repro.serve.http` — the stdlib asyncio HTTP/1.1 front-end
  (``POST /compile | /trace | /compare``, ``GET /healthz | /stats |
  /metrics | /trace/recent``),
* :mod:`~repro.serve.schemas` — request/response/error JSON schemas,
* :mod:`~repro.serve.loadgen` — ``repro bench serve``: the latency /
  throughput load generator feeding ``BENCH_<date>.json``.

From the shell::

    repro serve --port 8000 --jobs 4
    curl -s localhost:8000/healthz
    curl -s -XPOST localhost:8000/compile \
         -d '{"workload": "GHZ_n32", "machine": "eml"}'
    curl -s localhost:8000/metrics
    repro bench serve --quick
"""

from .cache import DEFAULT_MAX_MEMORY_MB, MemoryLRU, TwoTierCache
from .http import error_body, run_server, start_http_server
from .jobs import Job, JobError, canonical_bytes, circuit_fingerprint, parse_job
from .loadgen import run_serve_bench
from .metrics import MetricsRegistry, validate_exposition
from .schemas import (
    CACHE_STATES,
    COMPARE_REQUEST_SCHEMA,
    COMPARE_RESPONSE_SCHEMA,
    COMPILE_REQUEST_SCHEMA,
    COMPILE_RESPONSE_SCHEMA,
    ERROR_SCHEMA,
    HEALTH_SCHEMA,
    SPANS_SCHEMA,
    STATS_SCHEMA,
    TRACE_ENTRY_SCHEMA,
    TRACE_RECENT_SCHEMA,
    TRACE_REQUEST_SCHEMA,
    TRACE_RESPONSE_SCHEMA,
)
from .service import ClientLimiter, CompileService, ServeExecutionError
from .tracing import RequestTrace, TraceRing, new_trace_id, sanitize_trace_id

__all__ = [
    "CACHE_STATES",
    "COMPARE_REQUEST_SCHEMA",
    "COMPARE_RESPONSE_SCHEMA",
    "COMPILE_REQUEST_SCHEMA",
    "COMPILE_RESPONSE_SCHEMA",
    "ClientLimiter",
    "CompileService",
    "DEFAULT_MAX_MEMORY_MB",
    "ERROR_SCHEMA",
    "HEALTH_SCHEMA",
    "Job",
    "JobError",
    "MemoryLRU",
    "MetricsRegistry",
    "RequestTrace",
    "SPANS_SCHEMA",
    "STATS_SCHEMA",
    "ServeExecutionError",
    "TRACE_ENTRY_SCHEMA",
    "TRACE_RECENT_SCHEMA",
    "TRACE_REQUEST_SCHEMA",
    "TRACE_RESPONSE_SCHEMA",
    "TraceRing",
    "TwoTierCache",
    "canonical_bytes",
    "circuit_fingerprint",
    "error_body",
    "new_trace_id",
    "parse_job",
    "run_serve_bench",
    "run_server",
    "sanitize_trace_id",
    "start_http_server",
    "validate_exposition",
]
