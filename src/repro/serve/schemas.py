"""Request / response / error JSON schemas of the compilation service.

Every byte the service reads or writes is governed by a schema here and
validated through :func:`repro.schema.validate` (``jsonschema`` when
installed, the built-in structural checker otherwise):

* requests — ``COMPILE_REQUEST_SCHEMA`` / ``TRACE_REQUEST_SCHEMA`` /
  ``COMPARE_REQUEST_SCHEMA``: the ``{workload, machine, compiler,
  physics}`` spec-string payload grammar,
* responses — wrap the existing :data:`repro.sim.REPORT_SCHEMA` payload
  (``/compile``, and one per suite compiler for ``/compare``) or the
  timed-trace records (``/trace``) together with the canonical job echo
  and the cache disposition of the request,
* errors — one structured shape for every non-2xx body, so a malformed
  spec string can never surface as a traceback.

The test suite round-trips every endpoint through these schemas; the CI
serve-smoke job re-validates a live ``/compile`` response against
:data:`repro.sim.REPORT_SCHEMA`.
"""

from __future__ import annotations

from ..sim import REPORT_SCHEMA

#: Where a response's payload came from: the in-memory LRU tier, the
#: on-disk store, a concurrent identical request (coalesced), or a
#: fresh execution (miss).
CACHE_STATES = ("memory", "disk", "coalesced", "miss")

_SPEC = {"type": "string", "minLength": 1}

#: ``POST /compile`` and ``POST /trace`` request body.
COMPILE_REQUEST_SCHEMA = {
    "$schema": "https://json-schema.org/draft/2020-12/schema",
    "title": "repro serve compile/trace request",
    "type": "object",
    "required": ["workload"],
    "additionalProperties": False,
    "properties": {
        "workload": _SPEC,
        "machine": _SPEC,
        "compiler": _SPEC,
        "physics": _SPEC,
    },
}

TRACE_REQUEST_SCHEMA = COMPILE_REQUEST_SCHEMA

#: ``POST /compare`` request body: no ``compiler`` field — the endpoint
#: always runs the registered paper suite; ``grid`` is the machine for
#: grid-family baselines (mirroring ``repro compare --grid``).
COMPARE_REQUEST_SCHEMA = {
    "$schema": "https://json-schema.org/draft/2020-12/schema",
    "title": "repro serve compare request",
    "type": "object",
    "required": ["workload"],
    "additionalProperties": False,
    "properties": {
        "workload": _SPEC,
        "machine": _SPEC,
        "grid": _SPEC,
        "physics": _SPEC,
    },
}

#: Canonical job echo carried by every success response.
JOB_SCHEMA = {
    "type": "object",
    "required": ["kind", "workload", "machine", "compiler", "physics", "circuit_hash"],
    "additionalProperties": False,
    "properties": {
        "kind": {"enum": ["compile", "trace", "compare"]},
        "workload": _SPEC,
        "machine": _SPEC,
        "compiler": _SPEC,
        "physics": _SPEC,
        "circuit_hash": {"type": "string", "minLength": 8},
    },
}

_CACHE = {"enum": list(CACHE_STATES)}

#: A request's trace id: honored from an inbound ``X-Request-Id`` (after
#: sanitisation) or generated, and echoed in every success response.
_TRACE_ID = {"type": "string", "minLength": 1, "maxLength": 128}

#: Per-request span timings returned in response metadata and kept in
#: the ``/trace/recent`` ring (parse, cache_lookup, coalesced_wait,
#: queue_wait, execute, encode — the subset that actually happened).
SPANS_SCHEMA = {
    "type": "array",
    "items": {
        "type": "object",
        "required": ["name", "ms"],
        "additionalProperties": False,
        "properties": {
            "name": _SPEC,
            "ms": {"type": "number", "minimum": 0},
        },
    },
}

#: ``POST /compile`` 200 body: the schema-validated execution report
#: plus the canonical job, cache disposition, and trace metadata.
COMPILE_RESPONSE_SCHEMA = {
    "$schema": "https://json-schema.org/draft/2020-12/schema",
    "title": "repro serve compile response",
    "type": "object",
    "required": ["job", "cache", "elapsed_ms", "trace_id", "spans", "report"],
    "additionalProperties": False,
    "properties": {
        "job": JOB_SCHEMA,
        "cache": _CACHE,
        "elapsed_ms": {"type": "number", "minimum": 0},
        "trace_id": _TRACE_ID,
        "spans": SPANS_SCHEMA,
        "report": REPORT_SCHEMA,
    },
}

#: ``POST /trace`` 200 body: the timed op records of the schedule.
TRACE_RESPONSE_SCHEMA = {
    "$schema": "https://json-schema.org/draft/2020-12/schema",
    "title": "repro serve trace response",
    "type": "object",
    "required": ["job", "cache", "elapsed_ms", "trace_id", "spans", "trace"],
    "additionalProperties": False,
    "properties": {
        "job": JOB_SCHEMA,
        "cache": _CACHE,
        "elapsed_ms": {"type": "number", "minimum": 0},
        "trace_id": _TRACE_ID,
        "spans": SPANS_SCHEMA,
        "trace": {
            "type": "object",
            "required": ["circuit", "compiler", "num_qubits", "shuttle_count", "operations"],
            "additionalProperties": False,
            "properties": {
                "circuit": _SPEC,
                "compiler": _SPEC,
                "num_qubits": {"type": "integer", "minimum": 1},
                "shuttle_count": {"type": "integer", "minimum": 0},
                "operations": {
                    "type": "array",
                    "items": {"type": "object"},
                },
            },
        },
    },
}

#: One successful ``/compare`` row: a cached/coalesced compile report.
_COMPARE_ROW_REPORT = {
    "type": "object",
    "required": ["compiler", "machine", "cache", "report"],
    "additionalProperties": False,
    "properties": {
        "compiler": _SPEC,
        "machine": _SPEC,
        "cache": _CACHE,
        "report": REPORT_SCHEMA,
    },
}

#: One failed ``/compare`` row: the sub-job's error, without abandoning
#: its sibling rows mid-flight.
_COMPARE_ROW_ERROR = {
    "type": "object",
    "required": ["compiler", "machine", "error"],
    "additionalProperties": False,
    "properties": {
        "compiler": _SPEC,
        "machine": _SPEC,
        "error": {
            "type": "object",
            "required": ["status", "message"],
            "additionalProperties": False,
            "properties": {
                "status": {"type": "integer", "minimum": 400, "maximum": 599},
                "message": _SPEC,
            },
        },
    },
}

#: ``POST /compare`` 200 body: one row per paper-suite compiler — a
#: report row (individually cached/coalesced like a ``/compile`` job)
#: or an error row when that sub-job failed.
COMPARE_RESPONSE_SCHEMA = {
    "$schema": "https://json-schema.org/draft/2020-12/schema",
    "title": "repro serve compare response",
    "type": "object",
    "required": ["job", "elapsed_ms", "trace_id", "spans", "rows"],
    "additionalProperties": False,
    "properties": {
        "job": JOB_SCHEMA,
        "elapsed_ms": {"type": "number", "minimum": 0},
        "trace_id": _TRACE_ID,
        "spans": SPANS_SCHEMA,
        "rows": {
            "type": "array",
            "minItems": 1,
            "items": {"anyOf": [_COMPARE_ROW_REPORT, _COMPARE_ROW_ERROR]},
        },
    },
}

#: Every non-2xx body: status mirrors the HTTP code, ``field`` names the
#: offending request field when one is known, and a 429 carries
#: ``retry_after_s`` (mirroring its ``Retry-After`` header).
ERROR_SCHEMA = {
    "$schema": "https://json-schema.org/draft/2020-12/schema",
    "title": "repro serve error",
    "type": "object",
    "required": ["error"],
    "additionalProperties": False,
    "properties": {
        "error": {
            "type": "object",
            "required": ["status", "message"],
            "additionalProperties": False,
            "properties": {
                "status": {"type": "integer", "minimum": 400, "maximum": 599},
                "message": _SPEC,
                "field": {"type": "string", "minLength": 1},
                "retry_after_s": {"type": "number", "minimum": 0},
            },
        },
    },
}

#: ``GET /healthz`` body.
HEALTH_SCHEMA = {
    "$schema": "https://json-schema.org/draft/2020-12/schema",
    "title": "repro serve health",
    "type": "object",
    "required": ["status", "uptime_s", "version"],
    "additionalProperties": False,
    "properties": {
        "status": {"const": "ok"},
        "uptime_s": {"type": "number", "minimum": 0},
        "version": _SPEC,
    },
}

#: ``GET /stats`` body: request counters plus the two cache tiers.
STATS_SCHEMA = {
    "$schema": "https://json-schema.org/draft/2020-12/schema",
    "title": "repro serve stats",
    "type": "object",
    "required": [
        "uptime_s",
        "requests",
        "cache",
        "connections",
        "backpressure",
        "workers",
    ],
    "additionalProperties": False,
    "properties": {
        "uptime_s": {"type": "number", "minimum": 0},
        "requests": {
            "type": "object",
            "additionalProperties": {"type": "integer", "minimum": 0},
        },
        "cache": {
            "type": "object",
            "required": [
                "memory_hits",
                "disk_hits",
                "misses",
                "coalesced",
                "memory_entries",
                "memory_bytes",
                "memory_evictions",
                "disk_ttl_evictions",
            ],
            "additionalProperties": False,
            "properties": {
                "memory_hits": {"type": "integer", "minimum": 0},
                "disk_hits": {"type": "integer", "minimum": 0},
                "misses": {"type": "integer", "minimum": 0},
                "coalesced": {"type": "integer", "minimum": 0},
                "memory_entries": {"type": "integer", "minimum": 0},
                "memory_bytes": {"type": "integer", "minimum": 0},
                "memory_evictions": {"type": "integer", "minimum": 0},
                "disk_ttl_evictions": {"type": "integer", "minimum": 0},
            },
        },
        "connections": {
            "type": "object",
            "required": ["active", "limit", "shed"],
            "additionalProperties": False,
            "properties": {
                "active": {"type": "integer", "minimum": 0},
                "limit": {"type": "integer", "minimum": 0},
                "shed": {"type": "integer", "minimum": 0},
            },
        },
        "backpressure": {
            "type": "object",
            "required": [
                "max_inflight_per_client",
                "rate_per_client",
                "rejected",
                "clients",
            ],
            "additionalProperties": False,
            "properties": {
                "max_inflight_per_client": {"type": "integer", "minimum": 0},
                "rate_per_client": {"type": "number", "minimum": 0},
                "rejected": {"type": "integer", "minimum": 0},
                "clients": {"type": "integer", "minimum": 0},
            },
        },
        "workers": {"type": "integer", "minimum": 0},
    },
}

#: One entry of the ``GET /trace/recent`` ring: a finished request with
#: its trace id, outcome, and span timings.
TRACE_ENTRY_SCHEMA = {
    "type": "object",
    "required": ["trace_id", "endpoint", "status", "total_ms", "spans"],
    "additionalProperties": False,
    "properties": {
        "trace_id": _TRACE_ID,
        "endpoint": _SPEC,
        "method": {"type": "string"},
        "client": {"type": "string"},
        "started_utc": {"type": "string"},
        "status": {"type": "integer", "minimum": 0, "maximum": 599},
        "total_ms": {"type": "number", "minimum": 0},
        "spans": SPANS_SCHEMA,
        "annotations": {"type": "object"},
    },
}

#: ``GET /trace/recent`` body: the bounded in-memory trace ring, newest
#: first.
TRACE_RECENT_SCHEMA = {
    "$schema": "https://json-schema.org/draft/2020-12/schema",
    "title": "repro serve recent traces",
    "type": "object",
    "required": ["capacity", "traces"],
    "additionalProperties": False,
    "properties": {
        "capacity": {"type": "integer", "minimum": 1},
        "traces": {"type": "array", "items": TRACE_ENTRY_SCHEMA},
    },
}
