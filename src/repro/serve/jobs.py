"""Job specs: the unit of work of the compilation service.

A *job* is one fully-canonicalised request — kind (``compile`` /
``trace`` / ``compare``) plus the four registry spec strings every
front-end already speaks (workload, machine, compiler, physics).  The
service keys its result cache and its request coalescing on
:attr:`Job.key`, which is built from the **content hash of the resolved
circuit** and the **canonical** spec strings, so:

* two spellings of the same machine (``eml?modules=16&optical=2`` vs
  ``eml:16:2``) share one cache entry,
* a workload rename that keeps the gate stream identical still hits,
  while any change to the generated circuit misses,
* the key is a plain JSON string — safe as an on-disk cache key and
  printable in ``/stats``.

Validation happens here, at the front door: every field resolves
through its registry before any work is queued, and failures raise
:class:`JobError` carrying the offending field name so the HTTP layer
can return a structured 400 instead of a traceback.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass

from ..hardware import canonical_machine_spec
from ..physics import canonical_physics_spec
from ..pipeline import resolve_compiler
from ..pipeline.registry import format_compiler_spec, parse_compiler_spec
from ..workloads import get_benchmark

#: Request kinds the service executes (``compare`` fans out into
#: per-compiler ``compile`` sub-jobs, so they share one cache).
JOB_KINDS = ("compile", "trace", "compare")

#: Payload fields accepted by ``/compile`` and ``/trace``.
JOB_FIELDS = ("workload", "machine", "compiler", "physics")

#: Defaults applied when a payload omits an optional field.
DEFAULTS = {"machine": "eml", "compiler": "muss-ti", "physics": "table1"}


class JobError(ValueError):
    """A request payload failed validation.

    Carries the offending ``field`` (or ``None`` for payload-level
    problems) so the HTTP layer can emit a structured 400 error body.
    """

    def __init__(self, message: str, *, field: str | None = None) -> None:
        super().__init__(message)
        self.field = field

    @property
    def message(self) -> str:
        return self.args[0]


def circuit_fingerprint(circuit) -> str:
    """Content hash of a circuit: qubit count plus the exact gate stream.

    Stable across processes and python versions (no ``hash()``), and
    sensitive to any change in the generated gates — the property that
    makes the service cache *content*-addressed rather than
    name-addressed.
    """
    digest = hashlib.sha256()
    digest.update(f"{circuit.num_qubits}\0".encode())
    for gate in circuit:
        digest.update(gate.name.encode())
        digest.update(b"\0")
        digest.update(",".join(str(q) for q in gate.qubits).encode())
        digest.update(b"\0")
        digest.update(",".join(repr(p) for p in gate.params).encode())
        digest.update(b"\n")
    return digest.hexdigest()[:32]


def canonical_compiler_spec(spec: str) -> str:
    """Canonicalise a compiler spec (name resolved, options sorted)."""
    name, options = parse_compiler_spec(spec)
    # Instantiating validates both the name and every option value.
    resolve_compiler(spec)
    return format_compiler_spec(name, options)


@dataclass(frozen=True)
class Job:
    """One canonicalised service request."""

    kind: str
    workload: str
    machine: str
    compiler: str
    physics: str
    circuit_hash: str

    @property
    def key(self) -> str:
        """Canonical cache / coalescing key: circuit hash + canonical specs.

        The workload *name* is deliberately absent — two names generating
        the same circuit are the same job.
        """
        return json.dumps(
            {
                "kind": self.kind,
                "circuit": self.circuit_hash,
                "machine": self.machine,
                "compiler": self.compiler,
                "physics": self.physics,
            },
            sort_keys=True,
            separators=(",", ":"),
        )

    def to_dict(self) -> dict:
        """JSON-safe echo of the canonical job, returned in responses."""
        return {
            "kind": self.kind,
            "workload": self.workload,
            "machine": self.machine,
            "compiler": self.compiler,
            "physics": self.physics,
            "circuit_hash": self.circuit_hash,
        }


def _require_payload(payload) -> dict:
    if not isinstance(payload, dict):
        raise JobError(
            f"request body must be a JSON object, got {type(payload).__name__}"
        )
    return payload


def _spec_field(payload: dict, field: str) -> str:
    value = payload.get(field, DEFAULTS.get(field))
    if value is None:
        raise JobError(f"missing required field {field!r}", field=field)
    if not isinstance(value, str) or not value.strip():
        raise JobError(
            f"field {field!r} must be a non-empty spec string, got {value!r}",
            field=field,
        )
    return value.strip()


def parse_job(kind: str, payload, *, allowed_fields: tuple = JOB_FIELDS, trace=None) -> Job:
    """Validate and canonicalise one request payload into a :class:`Job`.

    Every failure — unknown field, unknown workload family, bad machine
    or physics spec, invalid compiler option — raises :class:`JobError`
    naming the field, never a bare traceback.

    When a :class:`~repro.serve.tracing.RequestTrace` is supplied the
    validation work is recorded as the request's ``parse`` span and the
    canonical job identity is attached as trace annotations.
    """
    if trace is not None:
        with trace.span("parse"):
            job = _parse_job(kind, payload, allowed_fields=allowed_fields)
        trace.annotate(workload=job.workload, circuit_hash=job.circuit_hash)
        return job
    return _parse_job(kind, payload, allowed_fields=allowed_fields)


def _parse_job(kind: str, payload, *, allowed_fields: tuple = JOB_FIELDS) -> Job:
    if kind not in JOB_KINDS:
        raise JobError(f"unknown job kind {kind!r} (want one of {JOB_KINDS})")
    payload = _require_payload(payload)
    for name in payload:
        if name not in allowed_fields:
            raise JobError(
                f"unexpected field {name!r} (accepted: {', '.join(allowed_fields)})",
                field=name,
            )

    workload = _spec_field(payload, "workload")
    machine = _spec_field(payload, "machine")
    compiler = _spec_field(payload, "compiler")
    physics = _spec_field(payload, "physics")

    try:
        circuit = get_benchmark(workload)
    except (ValueError, KeyError) as error:
        raise JobError(f"bad workload {workload!r}: {error}", field="workload") from None
    try:
        machine = canonical_machine_spec(machine)
    except ValueError as error:
        raise JobError(f"bad machine spec: {error}", field="machine") from None
    try:
        compiler = canonical_compiler_spec(compiler)
    except (ValueError, KeyError) as error:
        raise JobError(f"bad compiler spec: {error}", field="compiler") from None
    try:
        physics = canonical_physics_spec(physics)
    except (ValueError, KeyError) as error:
        raise JobError(f"bad physics spec: {error}", field="physics") from None

    return Job(
        kind=kind,
        workload=workload,
        machine=machine,
        compiler=compiler,
        physics=physics,
        circuit_hash=circuit_fingerprint(circuit),
    )


def canonical_bytes(payload: dict) -> bytes:
    """The one JSON encoding used for cached results and coalesced
    responses: sorted keys, no whitespace.  Byte-identical for equal
    payloads, so every waiter on a coalesced job receives the same
    bytes."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode()
