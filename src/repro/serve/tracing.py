"""Per-request tracing of the compilation service.

Every request the HTTP front-end accepts gets a *trace id* — either the
value of an inbound ``X-Request-Id`` header (so a caller can correlate
its own logs with the service's) or a freshly generated one — and a
:class:`RequestTrace` that rides through the whole request path:
``parse_job`` records the validation span, :class:`TwoTierCache` the
cache-lookup span, the coalescer its wait, and the worker pool the
queue-wait/execute split.  The finished trace is

* echoed in the response metadata (``trace_id`` + ``spans``) and in an
  ``X-Request-Id`` response header, and
* kept in a bounded in-memory :class:`TraceRing` readable at
  ``GET /trace/recent`` — the last N requests with their span timings,
  newest first, for "what just happened" debugging without log files.

Span names the service records (a request carries the subset that
actually happened)::

    parse           request payload validation + canonicalisation
    cache_lookup    two-tier cache probe (memory, then disk off-loop)
    coalesced_wait  waiting on an identical in-flight request
    queue_wait      submitted to the worker pool, not yet picked up
    execute         compile + replay + price inside the worker
    encode          decoding canonical result bytes into the response

Stdlib-only, like the rest of the package.
"""

from __future__ import annotations

import re
import time
import uuid
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from datetime import datetime, timezone

#: Bound on the trace ring (``GET /trace/recent`` serves at most this
#: many entries; older traces fall off the end).
DEFAULT_RING_CAPACITY = 256

#: Inbound ``X-Request-Id`` values must match this to be honored — a
#: bounded charset/length so a hostile header can never smuggle bytes
#: into responses or the ring.  Anything else gets a generated id.
_TRACE_ID_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._:/-]{0,127}$")


def new_trace_id() -> str:
    """A fresh 32-hex-char trace id."""
    return uuid.uuid4().hex


def sanitize_trace_id(candidate: object) -> str:
    """Honor a well-formed inbound request id; replace anything else.

    Well-formed means 1-128 chars of ``[A-Za-z0-9._:/-]`` starting with
    an alphanumeric — the shapes request-id middlewares actually emit.
    """
    if isinstance(candidate, str) and _TRACE_ID_RE.match(candidate):
        return candidate
    return new_trace_id()


@dataclass
class Span:
    """One timed segment of a request, in milliseconds."""

    name: str
    ms: float

    def to_dict(self) -> dict:
        return {"name": self.name, "ms": self.ms}


@dataclass
class RequestTrace:
    """The spans and annotations of one request, keyed by trace id."""

    trace_id: str
    endpoint: str
    method: str = ""
    client: str = ""
    started_utc: str = ""
    spans: list[Span] = field(default_factory=list)
    annotations: dict = field(default_factory=dict)

    @classmethod
    def begin(
        cls,
        endpoint: str,
        *,
        method: str = "",
        client: str = "",
        request_id: object = None,
    ) -> "RequestTrace":
        """Start a trace, honoring a sane inbound ``X-Request-Id``."""
        return cls(
            trace_id=sanitize_trace_id(request_id),
            endpoint=endpoint,
            method=method,
            client=client,
            started_utc=datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ"),
        )

    def add(self, name: str, seconds: float) -> None:
        """Record one span of *seconds* duration (stored in ms)."""
        self.spans.append(Span(name, round(max(seconds, 0.0) * 1000.0, 3)))

    @contextmanager
    def span(self, name: str):
        """Context manager timing its body into one span."""
        started = time.perf_counter()
        try:
            yield self
        finally:
            self.add(name, time.perf_counter() - started)

    def annotate(self, **values) -> None:
        """Attach JSON-safe key/value context (cache tier, job key, ...)."""
        self.annotations.update(values)

    def spans_summary(self) -> list[dict]:
        """The spans as JSON-safe dicts, in recording order."""
        return [span.to_dict() for span in self.spans]

    def to_dict(self, *, status: int | None = None, total_ms: float | None = None) -> dict:
        """The ring entry: identity, outcome, and every span."""
        entry = {
            "trace_id": self.trace_id,
            "endpoint": self.endpoint,
            "method": self.method,
            "client": self.client,
            "started_utc": self.started_utc,
            "status": 0 if status is None else status,
            "total_ms": 0.0 if total_ms is None else round(total_ms, 3),
            "spans": self.spans_summary(),
        }
        if self.annotations:
            entry["annotations"] = dict(self.annotations)
        return entry


class TraceRing:
    """Bounded ring of finished request traces (newest first on read)."""

    def __init__(self, capacity: int = DEFAULT_RING_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError(f"trace ring capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._entries: deque = deque(maxlen=capacity)

    def __len__(self) -> int:
        return len(self._entries)

    def record(
        self, trace: RequestTrace, *, status: int, total_ms: float
    ) -> None:
        """Finalize one trace into the ring."""
        self._entries.append(trace.to_dict(status=status, total_ms=total_ms))

    def recent(self, limit: int | None = None) -> list[dict]:
        """The most recent traces, newest first."""
        entries = list(self._entries)
        entries.reverse()
        if limit is not None:
            entries = entries[: max(limit, 0)]
        return entries
