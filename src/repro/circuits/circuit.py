"""Quantum circuit container.

A :class:`QuantumCircuit` is an ordered list of :class:`~repro.circuits.gate.Gate`
records over ``num_qubits`` wires.  It offers the handful of structural
queries the compiler stack needs (two-qubit gate extraction, depth, counts,
reversal for SABRE) plus convenience appenders for the common gate set so the
workload generators read like textbook circuit constructions.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable, Iterator

from .gate import Gate, GateError


class CircuitError(ValueError):
    """Raised when a gate does not fit the circuit (e.g. qubit out of range)."""


class QuantumCircuit:
    """An ordered gate list over a fixed number of qubits."""

    def __init__(self, num_qubits: int, name: str = "circuit") -> None:
        if num_qubits <= 0:
            raise CircuitError(f"num_qubits must be positive, got {num_qubits}")
        self.num_qubits = num_qubits
        self.name = name
        self._gates: list[Gate] = []

    # ------------------------------------------------------------------
    # Container protocol
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._gates)

    def __iter__(self) -> Iterator[Gate]:
        return iter(self._gates)

    def __getitem__(self, index: int) -> Gate:
        return self._gates[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, QuantumCircuit):
            return NotImplemented
        return (
            self.num_qubits == other.num_qubits and self._gates == other._gates
        )

    def __repr__(self) -> str:
        return (
            f"QuantumCircuit(name={self.name!r}, num_qubits={self.num_qubits}, "
            f"gates={len(self._gates)})"
        )

    @property
    def gates(self) -> tuple[Gate, ...]:
        """The gate sequence as an immutable snapshot."""
        return tuple(self._gates)

    # ------------------------------------------------------------------
    # Building
    # ------------------------------------------------------------------

    def append(self, gate: Gate) -> "QuantumCircuit":
        """Append a gate, validating its qubits against the register size."""
        for q in gate.qubits:
            if q >= self.num_qubits:
                raise CircuitError(
                    f"gate {gate} uses qubit {q} but circuit has "
                    f"{self.num_qubits} qubits"
                )
        self._gates.append(gate)
        return self

    def extend(self, gates: Iterable[Gate]) -> "QuantumCircuit":
        for gate in gates:
            self.append(gate)
        return self

    def add(self, name: str, *qubits: int, params: Iterable[float] = ()) -> "QuantumCircuit":
        """Append a gate by name; the generic escape hatch."""
        return self.append(Gate(name, tuple(qubits), tuple(params)))

    # Named appenders keep generator code close to the textbook notation.

    def h(self, q: int) -> "QuantumCircuit":
        return self.add("h", q)

    def x(self, q: int) -> "QuantumCircuit":
        return self.add("x", q)

    def y(self, q: int) -> "QuantumCircuit":
        return self.add("y", q)

    def z(self, q: int) -> "QuantumCircuit":
        return self.add("z", q)

    def s(self, q: int) -> "QuantumCircuit":
        return self.add("s", q)

    def sdg(self, q: int) -> "QuantumCircuit":
        return self.add("sdg", q)

    def t(self, q: int) -> "QuantumCircuit":
        return self.add("t", q)

    def tdg(self, q: int) -> "QuantumCircuit":
        return self.add("tdg", q)

    def rx(self, angle: float, q: int) -> "QuantumCircuit":
        return self.add("rx", q, params=(angle,))

    def ry(self, angle: float, q: int) -> "QuantumCircuit":
        return self.add("ry", q, params=(angle,))

    def rz(self, angle: float, q: int) -> "QuantumCircuit":
        return self.add("rz", q, params=(angle,))

    def p(self, angle: float, q: int) -> "QuantumCircuit":
        return self.add("p", q, params=(angle,))

    def cx(self, control: int, target: int) -> "QuantumCircuit":
        return self.add("cx", control, target)

    def cz(self, a: int, b: int) -> "QuantumCircuit":
        return self.add("cz", a, b)

    def cp(self, angle: float, a: int, b: int) -> "QuantumCircuit":
        return self.add("cp", a, b, params=(angle,))

    def rzz(self, angle: float, a: int, b: int) -> "QuantumCircuit":
        return self.add("rzz", a, b, params=(angle,))

    def ms(self, angle: float, a: int, b: int) -> "QuantumCircuit":
        return self.add("ms", a, b, params=(angle,))

    def swap(self, a: int, b: int) -> "QuantumCircuit":
        return self.add("swap", a, b)

    def ccx(self, c1: int, c2: int, target: int) -> "QuantumCircuit":
        return self.add("ccx", c1, c2, target)

    def measure(self, q: int) -> "QuantumCircuit":
        return self.add("measure", q)

    def barrier(self, q: int) -> "QuantumCircuit":
        return self.add("barrier", q)

    # ------------------------------------------------------------------
    # Structural queries
    # ------------------------------------------------------------------

    def count_ops(self) -> Counter:
        """Histogram of gate names."""
        return Counter(g.name for g in self._gates)

    @property
    def num_one_qubit_gates(self) -> int:
        return sum(1 for g in self._gates if g.is_one_qubit)

    @property
    def num_two_qubit_gates(self) -> int:
        return sum(1 for g in self._gates if g.is_two_qubit)

    def two_qubit_gates(self) -> list[Gate]:
        return [g for g in self._gates if g.is_two_qubit]

    def used_qubits(self) -> set[int]:
        used: set[int] = set()
        for gate in self._gates:
            used.update(gate.qubits)
        return used

    def depth(self) -> int:
        """Circuit depth counting every gate as one layer-slot."""
        frontier = [0] * self.num_qubits
        for gate in self._gates:
            level = 1 + max(frontier[q] for q in gate.qubits)
            for q in gate.qubits:
                frontier[q] = level
        return max(frontier, default=0)

    def two_qubit_depth(self) -> int:
        """Depth counting only two-or-more-qubit gates."""
        frontier = [0] * self.num_qubits
        for gate in self._gates:
            if gate.is_one_qubit:
                continue
            level = 1 + max(frontier[q] for q in gate.qubits)
            for q in gate.qubits:
                frontier[q] = level
        return max(frontier, default=0)

    def interaction_pairs(self) -> Counter:
        """Histogram of unordered qubit pairs coupled by two-qubit gates."""
        pairs: Counter = Counter()
        for gate in self._gates:
            if gate.is_two_qubit:
                pairs[tuple(sorted(gate.qubits))] += 1
        return pairs

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------

    def reversed(self) -> "QuantumCircuit":
        """Gates in reverse order (dependency DAG with all edges flipped).

        This is the ``G'`` of the SABRE two-fold search (§3.4); the gates
        themselves are not inverted because routing only cares about which
        qubits interact.
        """
        out = QuantumCircuit(self.num_qubits, name=f"{self.name}_reversed")
        out._gates = list(reversed(self._gates))
        return out

    def inverse(self) -> "QuantumCircuit":
        """The exact inverse circuit (reversed order, inverted gates)."""
        out = QuantumCircuit(self.num_qubits, name=f"{self.name}_dg")
        for gate in reversed(self._gates):
            if not gate.is_unitary:
                raise CircuitError(f"cannot invert non-unitary gate {gate}")
            out.append(gate.inverse())
        return out

    def remap(self, permutation: dict[int, int]) -> "QuantumCircuit":
        """Relabel qubits through ``permutation`` (old index -> new index)."""
        out = QuantumCircuit(self.num_qubits, name=self.name)
        for gate in self._gates:
            try:
                out.append(gate.on(*(permutation[q] for q in gate.qubits)))
            except KeyError as exc:
                raise CircuitError(f"permutation misses qubit {exc}") from exc
        return out

    def without_non_unitary(self) -> "QuantumCircuit":
        """Drop measure/reset/barrier markers (schedulers ignore them)."""
        out = QuantumCircuit(self.num_qubits, name=self.name)
        out._gates = [g for g in self._gates if g.is_unitary]
        return out

    def compose(self, other: "QuantumCircuit") -> "QuantumCircuit":
        """Concatenate ``other`` after this circuit (same register size)."""
        if other.num_qubits > self.num_qubits:
            raise CircuitError(
                "cannot compose a wider circuit "
                f"({other.num_qubits} > {self.num_qubits} qubits)"
            )
        out = QuantumCircuit(self.num_qubits, name=self.name)
        out._gates = self._gates + list(other._gates)
        return out


def validate_native(circuit: QuantumCircuit) -> None:
    """Check that a circuit contains only 1q/2q gates (scheduler input form).

    Raises:
        GateError: if a three-qubit gate survived decomposition.
    """
    for index, gate in enumerate(circuit):
        if gate.num_qubits > 2:
            raise GateError(
                f"gate #{index} ({gate}) has {gate.num_qubits} qubits; run "
                "repro.circuits.decompose.lower_to_native first"
            )
