"""Lowering passes to the scheduler's native gate set.

The schedulers accept only one- and two-qubit gates.  Workload generators are
free to use CCX/CSWAP and the richer two-qubit family; this module lowers
them with standard textbook identities:

* ``ccx``  -> 6 CX + 7 one-qubit gates (T-count-7 Toffoli network).
* ``cswap``-> CX · CCX · CX.
* ``swap`` -> optionally 3 CX (kept intact by default because the hardware
  executes a logical SWAP as 3 MS gates natively, §3.3).
* ``cp/cu1`` -> 2 CX + 3 RZ (phase form).
* ``rzz``  -> CX · RZ · CX.

Lowering preserves the interaction structure exactly, which is all the
shuttle schedulers observe.
"""

from __future__ import annotations

import math

from .circuit import QuantumCircuit
from .gate import Gate


def decompose_ccx(c1: int, c2: int, target: int) -> list[Gate]:
    """Standard 6-CX Toffoli decomposition."""
    t, tdg, h, cx = "t", "tdg", "h", "cx"
    return [
        Gate(h, (target,)),
        Gate(cx, (c2, target)),
        Gate(tdg, (target,)),
        Gate(cx, (c1, target)),
        Gate(t, (target,)),
        Gate(cx, (c2, target)),
        Gate(tdg, (target,)),
        Gate(cx, (c1, target)),
        Gate(t, (c2,)),
        Gate(t, (target,)),
        Gate(h, (target,)),
        Gate(cx, (c1, c2)),
        Gate(t, (c1,)),
        Gate(tdg, (c2,)),
        Gate(cx, (c1, c2)),
    ]


def decompose_cswap(control: int, a: int, b: int) -> list[Gate]:
    """Fredkin gate via CX-conjugated Toffoli."""
    return (
        [Gate("cx", (b, a))]
        + decompose_ccx(control, a, b)
        + [Gate("cx", (b, a))]
    )


def decompose_swap(a: int, b: int) -> list[Gate]:
    """SWAP as three CX gates."""
    return [Gate("cx", (a, b)), Gate("cx", (b, a)), Gate("cx", (a, b))]


def decompose_cp(angle: float, a: int, b: int) -> list[Gate]:
    """Controlled-phase as 2 CX + 3 RZ (global phase dropped)."""
    half = angle / 2.0
    return [
        Gate("rz", (a,), (half,)),
        Gate("cx", (a, b)),
        Gate("rz", (b,), (-half,)),
        Gate("cx", (a, b)),
        Gate("rz", (b,), (half,)),
    ]


def decompose_rzz(angle: float, a: int, b: int) -> list[Gate]:
    """ZZ interaction as CX · RZ · CX."""
    return [
        Gate("cx", (a, b)),
        Gate("rz", (b,), (angle,)),
        Gate("cx", (a, b)),
    ]


def lower_to_native(
    circuit: QuantumCircuit,
    *,
    expand_swap: bool = False,
    expand_phase_gates: bool = False,
) -> QuantumCircuit:
    """Lower a circuit to 1q + 2q gates.

    Args:
        circuit: the input circuit (may contain ccx/cswap).
        expand_swap: also expand logical ``swap`` gates into 3 CX.  Off by
            default: the EML-QCCD hardware model executes a logical SWAP as
            three MS gates, and the executor prices it that way.
        expand_phase_gates: also expand ``cp``/``cu1``/``rzz`` into CX + RZ
            form.  Off by default: they are ordinary two-qubit gates to the
            scheduler, and keeping them intact keeps gate counts comparable
            with the paper's benchmark descriptions.

    Returns:
        A new circuit containing no gate wider than two qubits.
    """
    out = QuantumCircuit(circuit.num_qubits, name=circuit.name)
    for gate in circuit:
        if gate.name == "ccx":
            out.extend(decompose_ccx(*gate.qubits))
        elif gate.name == "cswap":
            out.extend(decompose_cswap(*gate.qubits))
        elif gate.name == "swap" and expand_swap:
            out.extend(decompose_swap(*gate.qubits))
        elif gate.name in ("cp", "cu1") and expand_phase_gates:
            out.extend(decompose_cp(gate.params[0], *gate.qubits))
        elif gate.name == "rzz" and expand_phase_gates:
            out.extend(decompose_rzz(gate.params[0], *gate.qubits))
        else:
            out.append(gate)
    return out


def ms_equivalent(circuit: QuantumCircuit) -> QuantumCircuit:
    """Rewrite CX/CZ into the native MS(pi/2) entangler plus 1q corrections.

    Trapped-ion hardware implements two-qubit entanglement with the
    Mølmer–Sørensen interaction; a CX equals one MS(pi/2) with single-qubit
    pre/post rotations.  Schedulers are insensitive to the rewrite (the
    two-qubit interaction pattern is identical) but it is useful for
    hardware-faithful gate counting.
    """
    out = QuantumCircuit(circuit.num_qubits, name=circuit.name)
    half_pi = math.pi / 2
    for gate in circuit:
        if gate.name == "cx":
            control, target = gate.qubits
            out.ry(half_pi, control)
            out.ms(half_pi, control, target)
            out.rx(-half_pi, control)
            out.rx(-half_pi, target)
            out.ry(-half_pi, control)
        elif gate.name == "cz":
            a, b = gate.qubits
            out.ry(half_pi, b)
            out.ry(half_pi, a)
            out.ms(half_pi, a, b)
            out.rx(-half_pi, a)
            out.rx(-half_pi, b)
            out.ry(-half_pi, a)
            out.ry(-half_pi, b)
        else:
            out.append(gate)
    return out
