"""Gate-level intermediate representation.

A :class:`Gate` is an immutable record naming a quantum operation, the qubits
it acts on, and its real parameters.  The scheduler only distinguishes
one-qubit gates (executed in place, §3.1 of the paper) from two-qubit gates
(which must be routed), so the IR stays deliberately small: a name drawn from
a known registry, a qubit tuple, and a parameter tuple.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

#: Names of supported one-qubit gates mapped to their parameter count.
ONE_QUBIT_GATES = {
    "id": 0,
    "h": 0,
    "x": 0,
    "y": 0,
    "z": 0,
    "s": 0,
    "sdg": 0,
    "t": 0,
    "tdg": 0,
    "sx": 0,
    "sxdg": 0,
    "rx": 1,
    "ry": 1,
    "rz": 1,
    "p": 1,
    "u1": 1,
    "u2": 2,
    "u3": 3,
    "measure": 0,
    "reset": 0,
    "barrier": 0,
}

#: Names of supported two-qubit gates mapped to their parameter count.
TWO_QUBIT_GATES = {
    "cx": 0,
    "cy": 0,
    "cz": 0,
    "ch": 0,
    "swap": 0,
    "ms": 1,      # Mølmer–Sørensen; the native trapped-ion entangler.
    "rxx": 1,
    "ryy": 1,
    "rzz": 1,
    "cp": 1,
    "cu1": 1,
    "crx": 1,
    "cry": 1,
    "crz": 1,
}

#: Names of supported three-qubit gates mapped to their parameter count.
THREE_QUBIT_GATES = {
    "ccx": 0,
    "cswap": 0,
}

#: Union of all gate registries: name -> parameter count.
GATE_PARAM_COUNTS = {**ONE_QUBIT_GATES, **TWO_QUBIT_GATES, **THREE_QUBIT_GATES}

#: name -> number of qubits the gate acts on.
GATE_ARITIES = {
    **{name: 1 for name in ONE_QUBIT_GATES},
    **{name: 2 for name in TWO_QUBIT_GATES},
    **{name: 3 for name in THREE_QUBIT_GATES},
}

#: Gates that commute with routing bookkeeping (no unitary action).
NON_UNITARY_GATES = frozenset({"measure", "reset", "barrier"})

#: The native set the schedulers accept (after decomposition).
NATIVE_ONE_QUBIT = frozenset(ONE_QUBIT_GATES)
NATIVE_TWO_QUBIT = frozenset(TWO_QUBIT_GATES)


class GateError(ValueError):
    """Raised for malformed gates (unknown name, bad arity, repeated qubit)."""


@dataclass(frozen=True, slots=True)
class Gate:
    """One quantum operation.

    Attributes:
        name: lower-case gate mnemonic, e.g. ``"cx"`` or ``"rz"``.
        qubits: the distinct qubit indices the gate acts on, in order.
        params: real parameters (rotation angles), possibly empty.
    """

    name: str
    qubits: tuple[int, ...]
    params: tuple[float, ...] = field(default=())

    def __post_init__(self) -> None:
        if self.name not in GATE_ARITIES:
            raise GateError(f"unknown gate name: {self.name!r}")
        arity = GATE_ARITIES[self.name]
        if len(self.qubits) != arity:
            raise GateError(
                f"gate {self.name!r} expects {arity} qubit(s), "
                f"got {len(self.qubits)}: {self.qubits}"
            )
        if len(set(self.qubits)) != len(self.qubits):
            raise GateError(f"gate {self.name!r} repeats a qubit: {self.qubits}")
        if any(q < 0 for q in self.qubits):
            raise GateError(f"gate {self.name!r} uses a negative qubit index")
        expected_params = GATE_PARAM_COUNTS[self.name]
        if len(self.params) != expected_params:
            raise GateError(
                f"gate {self.name!r} expects {expected_params} parameter(s), "
                f"got {len(self.params)}"
            )

    @property
    def num_qubits(self) -> int:
        """Number of qubits the gate acts on."""
        return len(self.qubits)

    @property
    def is_one_qubit(self) -> bool:
        return len(self.qubits) == 1

    @property
    def is_two_qubit(self) -> bool:
        return len(self.qubits) == 2

    @property
    def is_unitary(self) -> bool:
        return self.name not in NON_UNITARY_GATES

    def inverse(self) -> "Gate":
        """Return the inverse gate (used by SABRE's reverse traversal).

        Parametrised gates negate their angles; self-inverse gates return
        themselves; ``s``/``t`` map to their daggers and vice versa.
        """
        dagger_pairs = {
            "s": "sdg", "sdg": "s",
            "t": "tdg", "tdg": "t",
            "sx": "sxdg", "sxdg": "sx",
        }
        if self.name in dagger_pairs:
            return Gate(dagger_pairs[self.name], self.qubits)
        if self.params:
            return Gate(self.name, self.qubits, tuple(-p for p in self.params))
        return self

    def on(self, *qubits: int) -> "Gate":
        """Return a copy of this gate applied to different qubits."""
        return Gate(self.name, tuple(qubits), self.params)

    def __str__(self) -> str:
        if self.params:
            angle_text = ",".join(format_angle(p) for p in self.params)
            return f"{self.name}({angle_text}) {list(self.qubits)}"
        return f"{self.name} {list(self.qubits)}"


def format_angle(value: float) -> str:
    """Render an angle compactly, using multiples of pi when exact."""
    if value == 0:
        return "0"
    ratio = value / math.pi
    if ratio == int(ratio):
        n = int(ratio)
        if n == 1:
            return "pi"
        if n == -1:
            return "-pi"
        return f"{n}*pi"
    for denom in (2, 4, 8, 16):
        if abs(ratio * denom - round(ratio * denom)) < 1e-12:
            numer = round(ratio * denom)
            if numer == 1:
                return f"pi/{denom}"
            if numer == -1:
                return f"-pi/{denom}"
            return f"{numer}*pi/{denom}"
    return repr(value)
