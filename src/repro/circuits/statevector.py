"""Dense statevector / unitary simulation for small circuits.

Used by the test suite to prove decomposition identities (CCX -> 6 CX,
logical SWAP = 3 CX, MS-basis rewrites) by direct matrix comparison, and by
examples that want amplitudes.  Practical up to ~12 qubits; scheduling code
never imports this module.

Conventions: qubit 0 is the least-significant bit of the computational-basis
index (``|q_{n-1} ... q_1 q_0>``).
"""

from __future__ import annotations

import math

import numpy as np

from .circuit import QuantumCircuit
from .gate import Gate

_SQRT_2 = math.sqrt(2.0)

_H = np.array([[1, 1], [1, -1]], dtype=complex) / _SQRT_2
_X = np.array([[0, 1], [1, 0]], dtype=complex)
_Y = np.array([[0, -1j], [1j, 0]], dtype=complex)
_Z = np.array([[1, 0], [0, -1]], dtype=complex)
_S = np.array([[1, 0], [0, 1j]], dtype=complex)
_SX = 0.5 * np.array([[1 + 1j, 1 - 1j], [1 - 1j, 1 + 1j]], dtype=complex)
_ID = np.eye(2, dtype=complex)


def _rx(theta: float) -> np.ndarray:
    c, s = math.cos(theta / 2), math.sin(theta / 2)
    return np.array([[c, -1j * s], [-1j * s, c]], dtype=complex)


def _ry(theta: float) -> np.ndarray:
    c, s = math.cos(theta / 2), math.sin(theta / 2)
    return np.array([[c, -s], [s, c]], dtype=complex)


def _rz(theta: float) -> np.ndarray:
    phase = np.exp(-1j * theta / 2)
    return np.array([[phase, 0], [0, np.conj(phase)]], dtype=complex)


def _phase(theta: float) -> np.ndarray:
    return np.array([[1, 0], [0, np.exp(1j * theta)]], dtype=complex)


def _u3(theta: float, phi: float, lam: float) -> np.ndarray:
    c, s = math.cos(theta / 2), math.sin(theta / 2)
    return np.array(
        [
            [c, -np.exp(1j * lam) * s],
            [np.exp(1j * phi) * s, np.exp(1j * (phi + lam)) * c],
        ],
        dtype=complex,
    )


def one_qubit_matrix(gate: Gate) -> np.ndarray:
    """2x2 unitary of a one-qubit gate."""
    name, params = gate.name, gate.params
    fixed = {
        "id": _ID,
        "h": _H,
        "x": _X,
        "y": _Y,
        "z": _Z,
        "s": _S,
        "sdg": _S.conj().T,
        "t": _phase(math.pi / 4),
        "tdg": _phase(-math.pi / 4),
        "sx": _SX,
        "sxdg": _SX.conj().T,
    }
    if name in fixed:
        return fixed[name]
    if name == "rx":
        return _rx(params[0])
    if name == "ry":
        return _ry(params[0])
    if name == "rz":
        return _rz(params[0])
    if name in ("p", "u1"):
        return _phase(params[0])
    if name == "u2":
        return _u3(math.pi / 2, params[0], params[1])
    if name == "u3":
        return _u3(*params)
    raise ValueError(f"gate {name!r} has no unitary (measure/reset/barrier?)")


def _controlled(unitary: np.ndarray) -> np.ndarray:
    out = np.eye(4, dtype=complex)
    out[2:, 2:] = unitary
    return out


def two_qubit_matrix(gate: Gate) -> np.ndarray:
    """4x4 unitary on (control=qubit0 of the gate, target=qubit1).

    Index convention inside the 4x4 block: basis |q_first q_second> with the
    gate's first operand as the most significant bit.
    """
    name, params = gate.name, gate.params
    if name == "cx":
        return _controlled(_X)
    if name == "cy":
        return _controlled(_Y)
    if name == "cz":
        return _controlled(_Z)
    if name == "ch":
        return _controlled(_H)
    if name in ("cp", "cu1"):
        return _controlled(_phase(params[0]))
    if name == "crx":
        return _controlled(_rx(params[0]))
    if name == "cry":
        return _controlled(_ry(params[0]))
    if name == "crz":
        return _controlled(_rz(params[0]))
    if name == "swap":
        return np.array(
            [[1, 0, 0, 0], [0, 0, 1, 0], [0, 1, 0, 0], [0, 0, 0, 1]],
            dtype=complex,
        )
    if name in ("rxx", "ms"):
        theta = params[0]
        c, s = math.cos(theta / 2), -1j * math.sin(theta / 2)
        out = np.eye(4, dtype=complex) * c
        out[0, 3] = out[1, 2] = out[2, 1] = out[3, 0] = s
        return out
    if name == "ryy":
        theta = params[0]
        c, s = math.cos(theta / 2), 1j * math.sin(theta / 2)
        out = np.eye(4, dtype=complex) * c
        out[0, 3] = out[3, 0] = s
        out[1, 2] = out[2, 1] = -s
        return out
    if name == "rzz":
        theta = params[0]
        phase = np.exp(-1j * theta / 2)
        return np.diag([phase, np.conj(phase), np.conj(phase), phase])
    raise ValueError(f"unsupported two-qubit gate {name!r}")


def _apply_gate(state: np.ndarray, gate: Gate, num_qubits: int) -> np.ndarray:
    """Apply one gate to a dense state of ``2**num_qubits`` amplitudes."""
    tensor = state.reshape([2] * num_qubits)
    # numpy axis 0 is the most significant qubit (n-1).
    axes = [num_qubits - 1 - q for q in gate.qubits]
    if gate.num_qubits == 1:
        matrix = one_qubit_matrix(gate)
        moved = np.moveaxis(tensor, axes[0], 0)
        shaped = moved.reshape(2, -1)
        result = (matrix @ shaped).reshape(moved.shape)
        tensor = np.moveaxis(result, 0, axes[0])
    elif gate.num_qubits == 2:
        matrix = two_qubit_matrix(gate)
        moved = np.moveaxis(tensor, axes, (0, 1))
        shaped = moved.reshape(4, -1)
        result = (matrix @ shaped).reshape(moved.shape)
        tensor = np.moveaxis(result, (0, 1), axes)
    elif gate.name == "ccx":
        matrix = np.eye(8, dtype=complex)
        matrix[6:, 6:] = _X
        moved = np.moveaxis(tensor, axes, (0, 1, 2))
        shaped = moved.reshape(8, -1)
        result = (matrix @ shaped).reshape(moved.shape)
        tensor = np.moveaxis(result, (0, 1, 2), axes)
    elif gate.name == "cswap":
        matrix = np.eye(8, dtype=complex)
        swap = np.array([[1, 0, 0, 0], [0, 0, 1, 0], [0, 1, 0, 0], [0, 0, 0, 1]])
        matrix[4:, 4:] = swap
        moved = np.moveaxis(tensor, axes, (0, 1, 2))
        shaped = moved.reshape(8, -1)
        result = (matrix @ shaped).reshape(moved.shape)
        tensor = np.moveaxis(result, (0, 1, 2), axes)
    else:
        raise ValueError(f"cannot simulate gate {gate}")
    return tensor.reshape(-1)


def statevector(circuit: QuantumCircuit, initial: np.ndarray | None = None) -> np.ndarray:
    """Final statevector of a circuit applied to |0...0> (or ``initial``)."""
    if circuit.num_qubits > 14:
        raise ValueError(
            f"statevector simulation capped at 14 qubits, got {circuit.num_qubits}"
        )
    dimension = 1 << circuit.num_qubits
    if initial is None:
        state = np.zeros(dimension, dtype=complex)
        state[0] = 1.0
    else:
        state = np.asarray(initial, dtype=complex).copy()
        if state.shape != (dimension,):
            raise ValueError(f"initial state must have {dimension} amplitudes")
    for gate in circuit:
        if not gate.is_unitary:
            continue
        state = _apply_gate(state, gate, circuit.num_qubits)
    return state


def unitary(circuit: QuantumCircuit) -> np.ndarray:
    """Full unitary matrix of a circuit (<= 10 qubits)."""
    if circuit.num_qubits > 10:
        raise ValueError(
            f"unitary construction capped at 10 qubits, got {circuit.num_qubits}"
        )
    dimension = 1 << circuit.num_qubits
    columns = []
    for basis in range(dimension):
        start = np.zeros(dimension, dtype=complex)
        start[basis] = 1.0
        columns.append(statevector(circuit, start))
    return np.stack(columns, axis=1)


def equivalent_up_to_global_phase(
    a: np.ndarray, b: np.ndarray, tolerance: float = 1e-9
) -> bool:
    """Whether two unitaries/states differ only by a global phase."""
    a = np.asarray(a)
    b = np.asarray(b)
    if a.shape != b.shape:
        return False
    index = np.unravel_index(np.argmax(np.abs(a)), a.shape)
    if abs(a[index]) < tolerance:
        return bool(np.allclose(a, b, atol=tolerance))
    if abs(b[index]) < tolerance:
        return False
    phase = b[index] / a[index]
    if not math.isclose(abs(phase), 1.0, abs_tol=1e-6):
        return False
    return bool(np.allclose(a * phase, b, atol=tolerance))
