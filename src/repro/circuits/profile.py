"""Circuit communication profiling.

Quantifies the properties the paper reasons about qualitatively — "QAOA is
nearest-neighbour", "SQRT is the most communication-intensive" — so workload
claims become measurable:

* :func:`interaction_distance_histogram` — |i - j| counts over two-qubit
  gates (wire-label locality).
* :func:`locality_score` — fraction of two-qubit gates whose operands are
  within a window (1.0 = fully local).
* :func:`reuse_distance_profile` — per-qubit gap (in two-qubit gate steps)
  between consecutive uses; small gaps mean LRU-friendly working sets.
* :func:`communication_summary` — one dict with the headline numbers.
"""

from __future__ import annotations

from collections import Counter

from .circuit import QuantumCircuit


def interaction_distance_histogram(circuit: QuantumCircuit) -> Counter:
    """Histogram of wire-label distances |i - j| over two-qubit gates."""
    histogram: Counter = Counter()
    for gate in circuit:
        if gate.is_two_qubit:
            a, b = gate.qubits
            histogram[abs(a - b)] += 1
    return histogram


def locality_score(circuit: QuantumCircuit, window: int = 8) -> float:
    """Fraction of two-qubit gates with operand distance <= ``window``."""
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    histogram = interaction_distance_histogram(circuit)
    total = sum(histogram.values())
    if total == 0:
        return 1.0
    local = sum(count for distance, count in histogram.items() if distance <= window)
    return local / total


def reuse_distance_profile(circuit: QuantumCircuit) -> Counter:
    """Histogram of per-qubit gaps between consecutive two-qubit gates.

    A gap of 0 means a qubit was used by back-to-back two-qubit gates; large
    gaps mean cold qubits.  LRU-style scheduling thrives on small gaps.
    """
    gaps: Counter = Counter()
    last_use: dict[int, int] = {}
    step = 0
    for gate in circuit:
        if not gate.is_two_qubit:
            continue
        for qubit in gate.qubits:
            if qubit in last_use:
                gaps[step - last_use[qubit] - 1] += 1
            last_use[qubit] = step
        step += 1
    return gaps


def communication_summary(circuit: QuantumCircuit, window: int = 8) -> dict:
    """Headline communication metrics for a workload."""
    histogram = interaction_distance_histogram(circuit)
    total = sum(histogram.values())
    gaps = reuse_distance_profile(circuit)
    gap_total = sum(gaps.values())
    mean_distance = (
        sum(distance * count for distance, count in histogram.items()) / total
        if total
        else 0.0
    )
    mean_gap = (
        sum(gap * count for gap, count in gaps.items()) / gap_total
        if gap_total
        else 0.0
    )
    return {
        "two_qubit_gates": total,
        "mean_interaction_distance": mean_distance,
        "max_interaction_distance": max(histogram) if histogram else 0,
        "locality_score": locality_score(circuit, window),
        "mean_reuse_gap": mean_gap,
    }
