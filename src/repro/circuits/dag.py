"""Gate dependency graph (paper §3.1).

Each gate is a node; a directed edge ``(g_i, g_j)`` means ``g_j`` acts on a
qubit that ``g_i`` acted on immediately before, so ``g_j`` may only run after
``g_i``.  Nodes with zero in-degree form the *frontier* and are ready to
execute.

The graph is consumed destructively by the schedulers (``complete`` removes a
frontier node and promotes its successors), and non-destructively by the SWAP
weight table, which inspects the first ``k`` layers ahead
(:meth:`DependencyGraph.first_k_layers`).

Construction is O(g) using a last-writer-per-qubit scan, matching the paper's
complexity claim.

Hot-path support: the graph tracks a :attr:`DependencyGraph.version` that
increments on every ``complete``, and memoises the expensive look-ahead
queries (the sorted frontier, the first-``k``-layer decomposition, and the
flattened two-qubit operand pairs those layers contain) per version.  The
MUSS-TI scheduling loop asks the same look-ahead question several times
between completions — once for routing, once or twice for the SWAP weight
table — so the memo collapses those recomputations into one.
"""

from __future__ import annotations

from collections.abc import Iterator

from .circuit import QuantumCircuit
from .gate import Gate


class DependencyError(RuntimeError):
    """Raised on illegal frontier operations (completing a blocked gate)."""


class _LookaheadWindow:
    """Incrementally maintained first-``k``-layers window of a DAG.

    The scheduling loop consults the look-ahead window after every gate it
    completes; recomputing the layer decomposition from scratch each time
    costs O(window) per completion and dominates large compiles.  This
    tracker exploits a monotonicity property: a gate's layer — its longest
    dependency path from the current frontier — can only *decrease* as
    gates complete (completions only remove terms from the defining
    ``1 + max(unfinished predecessors)`` recurrence).  So each completion
    triggers a decrease-only propagation over the affected successors:
    every node's layer drops at most ``k + 1`` times over a whole
    schedule, making the total maintenance cost O(gates × k × degree)
    instead of O(gates × window).

    Tracked state, all live views shared with consumers (read-only!):

    * ``layer`` — node -> layer, for nodes in layers ``0..k-1`` only;
    * ``by_qubit`` — qubit -> {partner: count} over the window's two-qubit
      gates (the SWAP weight table and routing census index);
    * ``qubits`` — the operand set of those gates (eviction protection).

    Membership matches the batch decomposition exactly: a node is tracked
    iff it appears in ``first_k_layers(k)`` at the current version (the
    scheduler-invariant property tests cross-check this).
    """

    __slots__ = ("k", "layer", "by_qubit", "qubits", "_dag", "_dirty")

    def __init__(self, dag: "DependencyGraph", k: int) -> None:
        self._dag = dag
        self.k = k
        self.layer: dict[int, int] = {}
        self.by_qubit: dict[int, dict[int, int]] = {}
        self.qubits: set[int] = set()
        self._dirty: list[int] = []
        for depth, nodes in enumerate(dag._layers(k)):
            for node in nodes:
                self.layer[node] = depth
                self._add_pairs(node)

    def _add_pairs(self, node: int) -> None:
        pair = self._dag._pair_of[node]
        if pair is None:
            return
        by_qubit = self.by_qubit
        for mine, partner in (pair, pair[::-1]):
            bucket = by_qubit.get(mine)
            if bucket is None:
                by_qubit[mine] = {partner: 1}
                self.qubits.add(mine)
            else:
                bucket[partner] = bucket.get(partner, 0) + 1

    def _remove_pairs(self, node: int) -> None:
        pair = self._dag._pair_of[node]
        if pair is None:
            return
        by_qubit = self.by_qubit
        for mine, partner in (pair, pair[::-1]):
            bucket = by_qubit[mine]
            count = bucket[partner]
            if count > 1:
                bucket[partner] = count - 1
            else:
                del bucket[partner]
                if not bucket:
                    del by_qubit[mine]
                    self.qubits.discard(mine)

    def on_complete(self, node: int) -> None:
        """Record a completion; reconciliation happens at the next query.

        Deferring matters: the drain stage completes long runs of gates
        without ever consulting the window, and the layer recurrence is a
        pure function of the completed set — so batching the decrease
        propagation at query time reaches the same fixpoint as processing
        completions one at a time.
        """
        self._dirty.append(node)

    def catch_up(self) -> None:
        """Propagate the layer decreases of all completions since the
        last query (multi-source, order-independent)."""
        dirty = self._dirty
        if not dirty:
            return
        dag = self._dag
        completed = dag._completed
        predecessors = dag._predecessors
        successors = dag._successors
        layer = self.layer
        k = self.k
        queue: list[int] = []
        for node in dirty:
            if layer.pop(node, None) is not None:
                self._remove_pairs(node)
            queue.extend(successors[node])
        self._dirty = []
        head = 0
        while head < len(queue):
            n = queue[head]
            head += 1
            if completed[n]:
                continue
            new_layer = 0
            outside = False
            for pred in predecessors[n]:
                if completed[pred]:
                    continue
                pred_layer = layer.get(pred)
                if pred_layer is None:
                    # An unfinished predecessor beyond the window keeps n
                    # beyond it too; were n a member, every unfinished
                    # predecessor would sit strictly below it (layers
                    # never increase), so nothing changes.
                    outside = True
                    break
                if pred_layer >= new_layer:
                    new_layer = pred_layer + 1
            if outside or new_layer >= k:
                continue
            old_layer = layer.get(n)
            if old_layer is None:
                layer[n] = new_layer
                self._add_pairs(n)
                queue.extend(successors[n])
            elif new_layer < old_layer:
                layer[n] = new_layer
                queue.extend(successors[n])
            # new_layer == old_layer: no change, no propagation.


class DependencyGraph:
    """Destructible dependency DAG over the gates of a circuit.

    Node identifiers are the gate's index in the original circuit, so FCFS
    tie-breaking (paper §3.2) is simply "smallest node id in the frontier".
    """

    def __init__(self, circuit: QuantumCircuit) -> None:
        self.circuit = circuit
        gates = circuit.gates
        self.num_gates = len(gates)
        self._gates = gates
        self._successors: list[list[int]] = [[] for _ in gates]
        self._predecessors: list[list[int]] = [[] for _ in gates]
        self._in_degree = [0] * len(gates)
        self._completed = [False] * len(gates)
        self._remaining = len(gates)

        last_on_qubit: dict[int, int] = {}
        for index, gate in enumerate(gates):
            preds = {last_on_qubit[q] for q in gate.qubits if q in last_on_qubit}
            for pred in preds:
                self._successors[pred].append(index)
                self._predecessors[index].append(pred)
            self._in_degree[index] = len(preds)
            for q in gate.qubits:
                last_on_qubit[q] = index
        #: node -> operand pair for two-qubit gates, None otherwise
        #: (precomputed so look-ahead walks skip the per-gate arity check).
        self._pair_of: list[tuple[int, int] | None] = [
            gate.qubits if gate.is_two_qubit else None for gate in gates
        ]

        self._frontier = {
            i for i, degree in enumerate(self._in_degree) if degree == 0
        }
        #: Monotone state counter: bumps on every :meth:`complete`.
        self.version = 0
        # Per-version memos (see module docstring).
        self._frontier_memo: tuple[int, list[int]] | None = None
        self._layers_memo: tuple[int, int, list[list[int]]] | None = None
        self._pairs_memo: tuple[int, int, tuple[tuple[int, int], ...]] | None = None
        self._window: _LookaheadWindow | None = None

    # ------------------------------------------------------------------
    # Read-only views
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return self._remaining

    @property
    def is_empty(self) -> bool:
        return self._remaining == 0

    def gate(self, node: int) -> Gate:
        return self._gates[node]

    def successors(self, node: int) -> tuple[int, ...]:
        return tuple(self._successors[node])

    def predecessors(self, node: int) -> tuple[int, ...]:
        return tuple(self._predecessors[node])

    def frontier(self) -> list[int]:
        """Ready nodes in FCFS (original circuit) order."""
        memo = self._frontier_memo
        if memo is not None and memo[0] == self.version:
            return list(memo[1])
        ordered = sorted(self._frontier)
        self._frontier_memo = (self.version, ordered)
        return list(ordered)

    def frontier_gates(self) -> list[tuple[int, Gate]]:
        return [(node, self._gates[node]) for node in self.frontier()]

    def is_ready(self, node: int) -> bool:
        return node in self._frontier

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def complete(self, node: int) -> list[int]:
        """Mark a frontier node as executed; return newly readied nodes."""
        if node not in self._frontier:
            raise DependencyError(
                f"gate #{node} is not in the frontier (in-degree "
                f"{self._in_degree[node]}, completed={self._completed[node]})"
            )
        self._frontier.discard(node)
        self._completed[node] = True
        self._remaining -= 1
        self.version += 1
        newly_ready: list[int] = []
        for succ in self._successors[node]:
            self._in_degree[succ] -= 1
            if self._in_degree[succ] == 0:
                self._frontier.add(succ)
                newly_ready.append(succ)
        if self._window is not None:
            self._window.on_complete(node)
        return newly_ready

    # ------------------------------------------------------------------
    # Look-ahead
    # ------------------------------------------------------------------

    def _layers(self, k: int) -> list[list[int]]:
        """Memoised layer decomposition (shared storage — do not mutate).

        ``first_k_layers(k)`` is a prefix of ``first_k_layers(k')`` for any
        ``k' > k``, so one memo holding the deepest decomposition computed
        at this version serves every shallower query as a slice.
        """
        memo = self._layers_memo
        if memo is not None and memo[0] == self.version and memo[1] >= k:
            return memo[2][:k]
        layers: list[list[int]] = []
        # node -> outstanding in-window predecessors; 0 marks "layered".
        # (A frontier node never appears as a successor — its predecessors
        # are all completed — so the frontier needs no pre-seeding.)
        outstanding: dict[int, int] = {}
        successors = self._successors
        in_degree = self._in_degree
        current = self.frontier()
        for _ in range(k):
            if not current:
                break
            layers.append(current)
            next_layer: list[int] = []
            for node in current:
                for succ in successors[node]:
                    left = outstanding.get(succ)
                    if left is None:
                        left = in_degree[succ]
                    elif left == 0:
                        continue
                    left -= 1
                    outstanding[succ] = left
                    if left == 0:
                        next_layer.append(succ)
            next_layer.sort()
            current = next_layer
        self._layers_memo = (self.version, k, layers)
        return list(layers)

    def first_k_layers(self, k: int) -> list[list[int]]:
        """The next ``k`` executable layers from the current state.

        Layer 0 is the current frontier; layer ``i+1`` contains the gates
        whose unfinished predecessors all sit in layers ``<= i``.  Used by the
        SWAP-insertion weight table (§3.3), which counts gate partners within
        the first ``k`` layers.
        """
        if k <= 0:
            return []
        # Fresh inner lists: callers own the returned structure.
        return [list(layer) for layer in self._layers(k)]

    def gates_within_layers(self, k: int) -> Iterator[tuple[int, Gate]]:
        """Iterate ``(layer_index, gate)`` over the first ``k`` layers."""
        if k <= 0:
            return
        gates = self._gates
        for layer_index, layer in enumerate(self._layers(k)):
            for node in layer:
                yield layer_index, gates[node]

    def two_qubit_pairs_within(self, k: int) -> tuple[tuple[int, int], ...]:
        """Operand pairs of the two-qubit gates in the first ``k`` layers.

        Flattened in layer order — exactly the pairs
        :meth:`gates_within_layers` would yield for two-qubit gates — and
        memoised per (version, k).  This is the scheduling loop's
        look-ahead working set: routing's future-partner census, eviction
        protection and the §3.3 SWAP weight table all consume it, so one
        computation per completion serves every consumer.
        """
        if k <= 0:
            return ()
        memo = self._pairs_memo
        if memo is not None and memo[0] == self.version and memo[1] == k:
            return memo[2]
        pair_of = self._pair_of
        pairs = tuple(
            pair
            for layer in self._layers(k)
            for node in layer
            if (pair := pair_of[node]) is not None
        )
        self._pairs_memo = (self.version, k, pairs)
        return pairs

    def _lookahead_window(self, k: int) -> _LookaheadWindow:
        window = self._window
        if window is None or window.k != k:
            window = self._window = _LookaheadWindow(self, k)
        else:
            window.catch_up()
        return window

    def lookahead_partners(self, k: int) -> dict[int, dict[int, int]]:
        """Per-qubit partner index over the first ``k`` layers.

        Maps each qubit appearing in a two-qubit gate of the look-ahead
        window to ``{partner: occurrence count}`` — the same multiset
        :meth:`two_qubit_pairs_within` flattens, but keyed for O(degree)
        per-qubit queries.  The SWAP weight table and routing's
        future-partner census both read it.  The returned dict is the
        **live view** of an incrementally maintained window
        (:class:`_LookaheadWindow`): it mutates on every :meth:`complete`
        and must be treated as read-only by consumers.
        """
        if k <= 0:
            return {}
        return self._lookahead_window(k).by_qubit

    def lookahead_qubits(self, k: int) -> set[int]:
        """Operands of the two-qubit gates in the first ``k`` layers: the
        scheduling loop's eviction-protection set.  Live view — mutates on
        :meth:`complete`, read-only for consumers."""
        if k <= 0:
            return set()
        return self._lookahead_window(k).qubits

    # ------------------------------------------------------------------
    # Whole-graph utilities (non-destructive)
    # ------------------------------------------------------------------

    def all_layers(self) -> list[list[int]]:
        """Layer decomposition of the *remaining* graph (as-late-as-possible
        gates still appear as early as their dependencies allow)."""
        return self.first_k_layers(self.num_gates or 1)

    def topological_order(self) -> list[int]:
        """A topological order of the remaining gates (FCFS within layers)."""
        return [node for layer in self.all_layers() for node in layer]


class DagArrays:
    """Immutable flat-array view of a circuit's dependency DAG.

    The array-core scheduler consumes the DAG as dense int structures —
    successor/predecessor adjacency as tuples-of-tuples, initial
    in-degrees, and the operand arrays ``qubit_a``/``qubit_b`` (with
    ``qubit_b[node] == -1`` for one-qubit gates).  Construction is the
    same O(g) last-writer scan :class:`DependencyGraph` runs, done once
    per circuit: SABRE's two-fold search schedules the same circuit
    object three times per compile, so the view is cached on the circuit
    (keyed by gate count — circuits are append-only through their API).
    """

    __slots__ = (
        "num_gates",
        "successors",
        "predecessors",
        "in_degree",
        "qubit_a",
        "qubit_b",
        "native_arity",
    )

    def __init__(self, circuit: QuantumCircuit) -> None:
        gates = circuit.gates
        num_gates = len(gates)
        successors: list[list[int]] = [[] for _ in gates]
        predecessors: list[list[int]] = [[] for _ in gates]
        in_degree = [0] * num_gates
        qubit_a = [0] * num_gates
        qubit_b = [-1] * num_gates
        native_arity = True
        last_on_qubit: dict[int, int] = {}
        for index, gate in enumerate(gates):
            qubits = gate.qubits
            arity = len(qubits)
            if arity == 2:
                qubit_a[index] = qubits[0]
                qubit_b[index] = qubits[1]
            elif arity == 1:
                qubit_a[index] = qubits[0]
            else:
                # Beyond the native 1q/2q set: the arrays cannot encode
                # it, so consumers must take the object path.
                native_arity = False
            preds = {last_on_qubit[q] for q in qubits if q in last_on_qubit}
            for pred in preds:
                successors[pred].append(index)
                predecessors[index].append(pred)
            in_degree[index] = len(preds)
            for q in qubits:
                last_on_qubit[q] = index
        self.num_gates = num_gates
        self.successors = tuple(tuple(s) for s in successors)
        self.predecessors = tuple(tuple(p) for p in predecessors)
        self.in_degree = tuple(in_degree)
        self.qubit_a = tuple(qubit_a)
        self.qubit_b = tuple(qubit_b)
        self.native_arity = native_arity


def dag_arrays(circuit: QuantumCircuit) -> DagArrays:
    """The cached :class:`DagArrays` view of ``circuit``."""
    cached = circuit.__dict__.get("_dag_arrays")
    if cached is not None and cached.num_gates == len(circuit):
        return cached
    arrays = DagArrays(circuit)
    circuit._dag_arrays = arrays  # type: ignore[attr-defined]
    return arrays


def dependency_layers(circuit: QuantumCircuit) -> list[list[int]]:
    """Convenience: layer decomposition of a full circuit."""
    return DependencyGraph(circuit).all_layers()
