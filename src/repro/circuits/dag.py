"""Gate dependency graph (paper §3.1).

Each gate is a node; a directed edge ``(g_i, g_j)`` means ``g_j`` acts on a
qubit that ``g_i`` acted on immediately before, so ``g_j`` may only run after
``g_i``.  Nodes with zero in-degree form the *frontier* and are ready to
execute.

The graph is consumed destructively by the schedulers (``complete`` removes a
frontier node and promotes its successors), and non-destructively by the SWAP
weight table, which inspects the first ``k`` layers ahead
(:meth:`DependencyGraph.first_k_layers`).

Construction is O(g) using a last-writer-per-qubit scan, matching the paper's
complexity claim.
"""

from __future__ import annotations

from collections.abc import Iterator

from .circuit import QuantumCircuit
from .gate import Gate


class DependencyError(RuntimeError):
    """Raised on illegal frontier operations (completing a blocked gate)."""


class DependencyGraph:
    """Destructible dependency DAG over the gates of a circuit.

    Node identifiers are the gate's index in the original circuit, so FCFS
    tie-breaking (paper §3.2) is simply "smallest node id in the frontier".
    """

    def __init__(self, circuit: QuantumCircuit) -> None:
        self.circuit = circuit
        gates = circuit.gates
        self.num_gates = len(gates)
        self._gates = gates
        self._successors: list[list[int]] = [[] for _ in gates]
        self._predecessors: list[list[int]] = [[] for _ in gates]
        self._in_degree = [0] * len(gates)
        self._completed = [False] * len(gates)
        self._remaining = len(gates)

        last_on_qubit: dict[int, int] = {}
        for index, gate in enumerate(gates):
            preds = {last_on_qubit[q] for q in gate.qubits if q in last_on_qubit}
            for pred in preds:
                self._successors[pred].append(index)
                self._predecessors[index].append(pred)
            self._in_degree[index] = len(preds)
            for q in gate.qubits:
                last_on_qubit[q] = index

        self._frontier = {
            i for i, degree in enumerate(self._in_degree) if degree == 0
        }

    # ------------------------------------------------------------------
    # Read-only views
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return self._remaining

    @property
    def is_empty(self) -> bool:
        return self._remaining == 0

    def gate(self, node: int) -> Gate:
        return self._gates[node]

    def successors(self, node: int) -> tuple[int, ...]:
        return tuple(self._successors[node])

    def predecessors(self, node: int) -> tuple[int, ...]:
        return tuple(self._predecessors[node])

    def frontier(self) -> list[int]:
        """Ready nodes in FCFS (original circuit) order."""
        return sorted(self._frontier)

    def frontier_gates(self) -> list[tuple[int, Gate]]:
        return [(node, self._gates[node]) for node in self.frontier()]

    def is_ready(self, node: int) -> bool:
        return node in self._frontier

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def complete(self, node: int) -> list[int]:
        """Mark a frontier node as executed; return newly readied nodes."""
        if node not in self._frontier:
            raise DependencyError(
                f"gate #{node} is not in the frontier (in-degree "
                f"{self._in_degree[node]}, completed={self._completed[node]})"
            )
        self._frontier.discard(node)
        self._completed[node] = True
        self._remaining -= 1
        newly_ready: list[int] = []
        for succ in self._successors[node]:
            self._in_degree[succ] -= 1
            if self._in_degree[succ] == 0:
                self._frontier.add(succ)
                newly_ready.append(succ)
        return newly_ready

    # ------------------------------------------------------------------
    # Look-ahead
    # ------------------------------------------------------------------

    def first_k_layers(self, k: int) -> list[list[int]]:
        """The next ``k`` executable layers from the current state.

        Layer 0 is the current frontier; layer ``i+1`` contains the gates
        whose unfinished predecessors all sit in layers ``<= i``.  Used by the
        SWAP-insertion weight table (§3.3), which counts gate partners within
        the first ``k`` layers.
        """
        if k <= 0:
            return []
        layers: list[list[int]] = []
        virtual_degree: dict[int, int] = {}
        current = self.frontier()
        seen = set(current)
        for _ in range(k):
            if not current:
                break
            layers.append(current)
            next_layer: list[int] = []
            for node in current:
                for succ in self._successors[node]:
                    if succ in seen:
                        continue
                    degree = virtual_degree.get(succ)
                    if degree is None:
                        degree = self._in_degree[succ]
                    degree -= 1
                    virtual_degree[succ] = degree
                    if degree == 0:
                        next_layer.append(succ)
                        seen.add(succ)
            current = sorted(next_layer)
        return layers

    def gates_within_layers(self, k: int) -> Iterator[tuple[int, Gate]]:
        """Iterate ``(layer_index, gate)`` over the first ``k`` layers."""
        for layer_index, layer in enumerate(self.first_k_layers(k)):
            for node in layer:
                yield layer_index, self._gates[node]

    # ------------------------------------------------------------------
    # Whole-graph utilities (non-destructive)
    # ------------------------------------------------------------------

    def all_layers(self) -> list[list[int]]:
        """Layer decomposition of the *remaining* graph (as-late-as-possible
        gates still appear as early as their dependencies allow)."""
        return self.first_k_layers(self.num_gates or 1)

    def topological_order(self) -> list[int]:
        """A topological order of the remaining gates (FCFS within layers)."""
        return [node for layer in self.all_layers() for node in layer]


def dependency_layers(circuit: QuantumCircuit) -> list[list[int]]:
    """Convenience: layer decomposition of a full circuit."""
    return DependencyGraph(circuit).all_layers()
