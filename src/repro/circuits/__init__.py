"""Quantum circuit intermediate representation.

The circuit layer is deliberately small and self-contained: gates
(:mod:`repro.circuits.gate`), the circuit container
(:mod:`repro.circuits.circuit`), the gate dependency DAG used by every
scheduler (:mod:`repro.circuits.dag`), lowering passes
(:mod:`repro.circuits.decompose`) and OpenQASM 2.0 I/O
(:mod:`repro.circuits.qasm`).
"""

from .circuit import CircuitError, QuantumCircuit, validate_native
from .dag import DependencyError, DependencyGraph, dependency_layers
from .decompose import lower_to_native, ms_equivalent
from .gate import (
    GATE_ARITIES,
    GATE_PARAM_COUNTS,
    ONE_QUBIT_GATES,
    THREE_QUBIT_GATES,
    TWO_QUBIT_GATES,
    Gate,
    GateError,
)
from .profile import (
    communication_summary,
    interaction_distance_histogram,
    locality_score,
    reuse_distance_profile,
)
from .qasm import QasmError, emit_qasm, load_qasm, parse_qasm, save_qasm
from .statevector import (
    equivalent_up_to_global_phase,
    statevector,
    unitary,
)

__all__ = [
    "CircuitError",
    "DependencyError",
    "DependencyGraph",
    "GATE_ARITIES",
    "GATE_PARAM_COUNTS",
    "Gate",
    "GateError",
    "ONE_QUBIT_GATES",
    "QasmError",
    "QuantumCircuit",
    "THREE_QUBIT_GATES",
    "TWO_QUBIT_GATES",
    "communication_summary",
    "dependency_layers",
    "interaction_distance_histogram",
    "locality_score",
    "reuse_distance_profile",
    "emit_qasm",
    "equivalent_up_to_global_phase",
    "load_qasm",
    "lower_to_native",
    "ms_equivalent",
    "parse_qasm",
    "save_qasm",
    "statevector",
    "unitary",
    "validate_native",
]
