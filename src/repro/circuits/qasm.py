"""OpenQASM 2.0 subset parser and emitter.

The QASMBench suite the paper draws its workloads from ships OpenQASM 2.0
files.  This module reads the practically-used subset of the language —
``qreg``/``creg`` declarations, the standard-library gate calls, ``measure``,
``barrier`` and user ``gate`` macro definitions — and flattens everything
onto a single wire index space, producing a
:class:`~repro.circuits.circuit.QuantumCircuit`.

Expressions in gate parameters support ``pi``, numeric literals, ``+ - * /``,
unary minus and parentheses, evaluated with a small recursive-descent parser
(no ``eval``).
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass

from .circuit import QuantumCircuit
from .gate import GATE_ARITIES, GATE_PARAM_COUNTS, Gate


class QasmError(ValueError):
    """Raised on malformed QASM input."""

    def __init__(self, message: str, line: int | None = None) -> None:
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)
        self.line = line


# ----------------------------------------------------------------------
# Parameter expression evaluation
# ----------------------------------------------------------------------

_TOKEN_RE = re.compile(
    r"\s*(?:(?P<number>\d+\.\d*|\.\d+|\d+)(?:[eE][+-]?\d+)?"
    r"|(?P<name>[a-zA-Z_][a-zA-Z_0-9]*)"
    r"|(?P<op>[-+*/()^]))"
)


class _ExpressionParser:
    """Recursive-descent evaluator for QASM parameter expressions."""

    def __init__(self, text: str, variables: dict[str, float]) -> None:
        self.tokens = self._tokenize(text)
        self.position = 0
        self.variables = variables
        self.text = text

    @staticmethod
    def _tokenize(text: str) -> list[str]:
        tokens: list[str] = []
        position = 0
        while position < len(text):
            match = _TOKEN_RE.match(text, position)
            if match is None:
                if text[position:].strip() == "":
                    break
                raise QasmError(f"bad expression token near {text[position:]!r}")
            tokens.append(match.group().strip())
            position = match.end()
        return tokens

    def _peek(self) -> str | None:
        if self.position < len(self.tokens):
            return self.tokens[self.position]
        return None

    def _take(self) -> str:
        token = self._peek()
        if token is None:
            raise QasmError(f"unexpected end of expression in {self.text!r}")
        self.position += 1
        return token

    def parse(self) -> float:
        value = self._expr()
        if self._peek() is not None:
            raise QasmError(f"trailing tokens in expression {self.text!r}")
        return value

    def _expr(self) -> float:
        value = self._term()
        while self._peek() in ("+", "-"):
            if self._take() == "+":
                value += self._term()
            else:
                value -= self._term()
        return value

    def _term(self) -> float:
        value = self._factor()
        while self._peek() in ("*", "/"):
            if self._take() == "*":
                value *= self._factor()
            else:
                value /= self._factor()
        return value

    def _factor(self) -> float:
        token = self._take()
        if token == "-":
            return -self._factor()
        if token == "+":
            return self._factor()
        if token == "(":
            value = self._expr()
            if self._take() != ")":
                raise QasmError(f"missing ')' in expression {self.text!r}")
            return value
        if token == "pi":
            return math.pi
        if token in self.variables:
            return self.variables[token]
        try:
            return float(token)
        except ValueError:
            raise QasmError(
                f"unknown symbol {token!r} in expression {self.text!r}"
            ) from None


def evaluate_expression(text: str, variables: dict[str, float] | None = None) -> float:
    """Evaluate a QASM parameter expression such as ``-3*pi/8``."""
    return _ExpressionParser(text, variables or {}).parse()


# ----------------------------------------------------------------------
# Parsing
# ----------------------------------------------------------------------

#: QASM statements that declare structure rather than apply gates.
_DECLARATION_KEYWORDS = ("OPENQASM", "include", "qreg", "creg", "gate", "opaque", "if")

#: Gates in qelib1.inc that we map onto our registry directly.
_ALIASES = {
    "cnot": "cx",
    "u": "u3",
    "phase": "p",
}


@dataclass
class _Register:
    name: str
    size: int
    offset: int


@dataclass
class _GateMacro:
    name: str
    params: list[str]
    qubits: list[str]
    body: list[str]


class QasmParser:
    """Parses an OpenQASM 2.0 program into a :class:`QuantumCircuit`."""

    def __init__(self) -> None:
        self.registers: dict[str, _Register] = {}
        self.macros: dict[str, _GateMacro] = {}
        self.total_qubits = 0

    # -- public API ----------------------------------------------------

    def parse(self, text: str, name: str = "qasm") -> QuantumCircuit:
        statements = self._split_statements(text)
        gates: list[Gate] = []
        for line_number, statement in statements:
            self._parse_statement(statement, gates, line_number)
        if self.total_qubits == 0:
            raise QasmError("no qreg declared")
        circuit = QuantumCircuit(self.total_qubits, name=name)
        circuit.extend(gates)
        return circuit

    # -- lexical structure ----------------------------------------------

    @staticmethod
    def _split_statements(text: str) -> list[tuple[int, str]]:
        """Strip comments, then split on ';' while keeping gate bodies whole."""
        lines = []
        for line_number, raw in enumerate(text.splitlines(), start=1):
            code = raw.split("//", 1)[0]
            if code.strip():
                lines.append((line_number, code))
        statements: list[tuple[int, str]] = []
        buffer = ""
        buffer_line = 0
        depth = 0
        for line_number, code in lines:
            for char in code:
                if not buffer.strip():
                    buffer_line = line_number
                if char == "{":
                    depth += 1
                elif char == "}":
                    depth -= 1
                    buffer += char
                    if depth == 0 and buffer.lstrip().startswith("gate"):
                        statements.append((buffer_line, buffer.strip()))
                        buffer = ""
                    continue
                if char == ";" and depth == 0:
                    if buffer.strip():
                        statements.append((buffer_line, buffer.strip()))
                    buffer = ""
                else:
                    buffer += char
            buffer += " "
        if buffer.strip():
            statements.append((buffer_line, buffer.strip()))
        return statements

    # -- statement dispatch ----------------------------------------------

    def _parse_statement(
        self, statement: str, gates: list[Gate], line: int
    ) -> None:
        if statement.startswith("OPENQASM") or statement.startswith("include"):
            return
        if statement.startswith("qreg"):
            self._parse_qreg(statement, line)
            return
        if statement.startswith("creg") or statement.startswith("opaque"):
            return
        if statement.startswith("gate "):
            self._parse_macro(statement, line)
            return
        if statement.startswith("if"):
            # Classical control collapses to the controlled gate for
            # scheduling purposes (the shuttle cost is identical).
            body = statement.split(")", 1)
            if len(body) != 2:
                raise QasmError("malformed if statement", line)
            self._parse_statement(body[1].strip(), gates, line)
            return
        if statement.startswith("measure"):
            self._parse_measure(statement, gates, line)
            return
        if statement.startswith("barrier"):
            self._parse_barrier(statement, gates, line)
            return
        if statement.startswith("reset"):
            operand = statement[len("reset"):].strip()
            for qubit in self._expand_operand(operand, line):
                gates.append(Gate("reset", (qubit,)))
            return
        self._parse_gate_call(statement, gates, line)

    def _parse_qreg(self, statement: str, line: int) -> None:
        match = re.fullmatch(r"qreg\s+([a-zA-Z_]\w*)\s*\[\s*(\d+)\s*\]", statement)
        if match is None:
            raise QasmError(f"malformed qreg: {statement!r}", line)
        reg_name, size_text = match.groups()
        size = int(size_text)
        if size <= 0:
            raise QasmError(f"qreg {reg_name} must have positive size", line)
        if reg_name in self.registers:
            raise QasmError(f"duplicate qreg {reg_name}", line)
        self.registers[reg_name] = _Register(reg_name, size, self.total_qubits)
        self.total_qubits += size

    def _parse_macro(self, statement: str, line: int) -> None:
        header, _, body = statement.partition("{")
        body = body.rsplit("}", 1)[0]
        header = header[len("gate"):].strip()
        match = re.match(
            r"([a-zA-Z_]\w*)\s*(?:\(([^)]*)\))?\s*(.*)", header, re.DOTALL
        )
        if match is None:
            raise QasmError(f"malformed gate definition: {header!r}", line)
        macro_name, params_text, qubits_text = match.groups()
        params = [p.strip() for p in (params_text or "").split(",") if p.strip()]
        qubits = [q.strip() for q in qubits_text.split(",") if q.strip()]
        body_statements = [s.strip() for s in body.split(";") if s.strip()]
        self.macros[macro_name] = _GateMacro(macro_name, params, qubits, body_statements)

    def _parse_measure(self, statement: str, gates: list[Gate], line: int) -> None:
        operand = statement[len("measure"):].split("->")[0].strip()
        for qubit in self._expand_operand(operand, line):
            gates.append(Gate("measure", (qubit,)))

    def _parse_barrier(self, statement: str, gates: list[Gate], line: int) -> None:
        operand_text = statement[len("barrier"):].strip()
        if not operand_text:
            return
        for operand in self._split_operands(operand_text):
            for qubit in self._expand_operand(operand, line):
                gates.append(Gate("barrier", (qubit,)))

    # -- gate calls -------------------------------------------------------

    def _parse_gate_call(self, statement: str, gates: list[Gate], line: int) -> None:
        match = re.match(
            r"([a-zA-Z_]\w*)\s*(?:\(([^)]*)\))?\s*(.+)", statement, re.DOTALL
        )
        if match is None:
            raise QasmError(f"cannot parse statement: {statement!r}", line)
        raw_name, params_text, operands_text = match.groups()
        name = _ALIASES.get(raw_name, raw_name)
        params = tuple(
            evaluate_expression(p)
            for p in (params_text or "").split(",")
            if p.strip()
        )
        operands = self._split_operands(operands_text)

        if name in self.macros:
            self._expand_macro(self.macros[name], params, operands, gates, line)
            return
        if name not in GATE_ARITIES:
            raise QasmError(f"unknown gate {raw_name!r}", line)

        expanded = [self._expand_operand(op, line) for op in operands]
        lengths = {len(qubits) for qubits in expanded if len(qubits) > 1}
        if len(lengths) > 1:
            raise QasmError("mismatched register broadcast sizes", line)
        broadcast = lengths.pop() if lengths else 1
        for i in range(broadcast):
            qubits = tuple(
                qs[i] if len(qs) > 1 else qs[0] for qs in expanded
            )
            gates.append(self._make_gate(name, qubits, params, line))

    def _make_gate(
        self, name: str, qubits: tuple[int, ...], params: tuple[float, ...], line: int
    ) -> Gate:
        expected = GATE_PARAM_COUNTS[name]
        if name == "ms" and len(params) == 0:
            params = (math.pi / 2,)
        if len(params) != expected:
            raise QasmError(
                f"gate {name} expects {expected} params, got {len(params)}", line
            )
        try:
            return Gate(name, qubits, params)
        except ValueError as exc:
            raise QasmError(str(exc), line) from exc

    def _expand_macro(
        self,
        macro: _GateMacro,
        params: tuple[float, ...],
        operands: list[str],
        gates: list[Gate],
        line: int,
    ) -> None:
        if len(params) != len(macro.params):
            raise QasmError(
                f"macro {macro.name} expects {len(macro.params)} params", line
            )
        if len(operands) != len(macro.qubits):
            raise QasmError(
                f"macro {macro.name} expects {len(macro.qubits)} qubits", line
            )
        bindings = dict(zip(macro.params, params))
        qubit_map: dict[str, int] = {}
        for formal, actual in zip(macro.qubits, operands):
            indices = self._expand_operand(actual, line)
            if len(indices) != 1:
                raise QasmError(
                    f"macro {macro.name} cannot broadcast registers", line
                )
            qubit_map[formal] = indices[0]
        for body_statement in macro.body:
            if body_statement.startswith("barrier"):
                continue
            match = re.match(
                r"([a-zA-Z_]\w*)\s*(?:\(([^)]*)\))?\s*(.+)", body_statement
            )
            if match is None:
                raise QasmError(
                    f"bad statement in macro {macro.name}: {body_statement!r}",
                    line,
                )
            raw_name, params_text, operands_text = match.groups()
            inner_name = _ALIASES.get(raw_name, raw_name)
            inner_params = tuple(
                evaluate_expression(p, bindings)
                for p in (params_text or "").split(",")
                if p.strip()
            )
            inner_operands = self._split_operands(operands_text)
            if inner_name in self.macros:
                mapped = []
                for operand in inner_operands:
                    if operand not in qubit_map:
                        raise QasmError(
                            f"macro {macro.name} uses unknown qubit {operand!r}",
                            line,
                        )
                    mapped.append(qubit_map[operand])
                self._expand_macro(
                    self.macros[inner_name],
                    inner_params,
                    [f"__q{i}" for i in mapped],
                    gates,
                    line,
                )
                continue
            if inner_name not in GATE_ARITIES:
                raise QasmError(
                    f"unknown gate {raw_name!r} in macro {macro.name}", line
                )
            qubits = []
            for operand in inner_operands:
                if operand.startswith("__q"):
                    qubits.append(int(operand[3:]))
                elif operand in qubit_map:
                    qubits.append(qubit_map[operand])
                else:
                    raise QasmError(
                        f"macro {macro.name} uses unknown qubit {operand!r}",
                        line,
                    )
            gates.append(self._make_gate(inner_name, tuple(qubits), inner_params, line))

    # -- operands ---------------------------------------------------------

    @staticmethod
    def _split_operands(text: str) -> list[str]:
        return [op.strip() for op in text.split(",") if op.strip()]

    def _expand_operand(self, operand: str, line: int) -> list[int]:
        """Resolve ``reg[3]`` to one index or bare ``reg`` to all its wires."""
        if operand.startswith("__q"):
            return [int(operand[3:])]
        match = re.fullmatch(r"([a-zA-Z_]\w*)\s*(?:\[\s*(\d+)\s*\])?", operand)
        if match is None:
            raise QasmError(f"malformed operand {operand!r}", line)
        reg_name, index_text = match.groups()
        register = self.registers.get(reg_name)
        if register is None:
            raise QasmError(f"unknown register {reg_name!r}", line)
        if index_text is None:
            return [register.offset + i for i in range(register.size)]
        index = int(index_text)
        if index >= register.size:
            raise QasmError(
                f"index {index} out of range for register {reg_name}[{register.size}]",
                line,
            )
        return [register.offset + index]


def parse_qasm(text: str, name: str = "qasm") -> QuantumCircuit:
    """Parse OpenQASM 2.0 source text into a circuit."""
    return QasmParser().parse(text, name=name)


def load_qasm(path: str) -> QuantumCircuit:
    """Parse an OpenQASM 2.0 file."""
    with open(path, encoding="utf-8") as handle:
        text = handle.read()
    name = path.rsplit("/", 1)[-1].rsplit(".", 1)[0]
    return parse_qasm(text, name=name)


# ----------------------------------------------------------------------
# Emission
# ----------------------------------------------------------------------

def emit_qasm(circuit: QuantumCircuit) -> str:
    """Serialise a circuit back to OpenQASM 2.0 text.

    Output uses one flat register ``q`` and numeric parameters, so
    ``parse_qasm(emit_qasm(c))`` reproduces the gate list exactly.
    """
    lines = [
        "OPENQASM 2.0;",
        'include "qelib1.inc";',
        f"qreg q[{circuit.num_qubits}];",
        f"creg c[{circuit.num_qubits}];",
    ]
    for gate in circuit:
        operands = ",".join(f"q[{q}]" for q in gate.qubits)
        if gate.name == "measure":
            lines.append(f"measure q[{gate.qubits[0]}] -> c[{gate.qubits[0]}];")
        elif gate.params:
            params = ",".join(repr(p) for p in gate.params)
            lines.append(f"{gate.name}({params}) {operands};")
        else:
            lines.append(f"{gate.name} {operands};")
    return "\n".join(lines) + "\n"


def save_qasm(circuit: QuantumCircuit, path: str) -> None:
    """Write a circuit to an OpenQASM 2.0 file."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(emit_qasm(circuit))
