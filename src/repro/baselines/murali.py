"""Baseline [55]: Murali et al., 'Architecting NISQ trapped-ion quantum
computers' (ISCA 2020).

The reference QCCD compiler: gates are processed in program order; when a
two-qubit gate's operands sit in different traps, one ion shuttles along the
shortest grid path into its partner's trap.  Destination overflow is
resolved by pushing a resident (no usage-recency awareness) to the nearest
trap with space.

The defining characteristics reproduced here:

* always move *towards the partner's trap* (no meet-in-the-middle),
* move the operand whose destination trap is less crowded (their
  occupancy-aware greedy choice), breaking ties toward the first operand,
* no look-ahead: each gate is resolved in isolation, so walking interaction
  patterns (Adder, SQRT) ping-pong ions between traps.
"""

from __future__ import annotations

from ..circuits import Gate
from ..core.state import MachineState
from .common import GridCompilerBase, make_room_simple


class MuraliCompiler(GridCompilerBase):
    """Greedy shortest-path QCCD grid compiler."""

    name = "QCCD-Murali"

    def resolve(self, state: MachineState, gate: Gate) -> None:
        qubit_a, qubit_b = gate.qubits
        zone_a = state.zone_of(qubit_a)
        zone_b = state.zone_of(qubit_b)
        # Send the ion into the trap with the most head-room; a full
        # destination forces an eviction on arrival.
        if state.free_space(zone_a) > state.free_space(zone_b):
            mover, target = qubit_b, zone_a
        else:
            mover, target = qubit_a, zone_b
        make_room_simple(state, target, 1, frozenset(gate.qubits))
        state.shuttle(mover, target)
