"""Baseline [13]: Dai et al., 'Advanced Shuttle Strategies for Parallel QCCD
Architectures' (IEEE TQE 2024).

An improved grid compiler whose defining idea is *cost-driven shuttle
selection with a short look-ahead*: instead of always moving one operand into
the other's trap, every (mover, target-trap) combination — including meeting
in an intermediate trap — is scored by

    hops(mover -> target) + hops(partner -> target)
    + eviction pressure at the target
    - affinity(mover, target) within the next ``lookahead`` gates

and the cheapest combination wins.  The affinity term keeps an ion near its
upcoming partners, which is what reduces shuttles relative to Murali et al.
on walking patterns, while occasionally losing on circuits where greedy
happens to be optimal (the paper's Table 2 shows exactly that mix).
"""

from __future__ import annotations

import time

from ..circuits import DependencyGraph, Gate, QuantumCircuit, validate_native
from ..core.state import MachineState
from ..hardware import Machine
from ..sim import Program
from .common import GridCompilerBase, make_room_simple


class DaiCompiler(GridCompilerBase):
    """Cost-and-look-ahead shuttle strategy on a QCCD grid."""

    name = "QCCD-Dai"

    def __init__(self, lookahead: int = 12) -> None:
        if lookahead < 0:
            raise ValueError(f"lookahead must be >= 0, got {lookahead}")
        self.lookahead = lookahead
        self._upcoming: dict[int, list[tuple[int, int]]] = {}
        self._cursor = 0

    # The look-ahead needs the gate sequence, so compile() records it before
    # delegating to the shared FCFS loop.
    def compile(
        self,
        circuit: QuantumCircuit,
        machine: Machine,
        initial_placement: dict[int, tuple[int, ...]] | None = None,
    ) -> Program:
        validate_native(circuit)
        self._upcoming = {}
        for index, gate in enumerate(circuit):
            if gate.is_two_qubit:
                qubit_a, qubit_b = gate.qubits
                self._upcoming.setdefault(qubit_a, []).append((index, qubit_b))
                self._upcoming.setdefault(qubit_b, []).append((index, qubit_a))
        self._cursor = 0
        return super().compile(circuit, machine, initial_placement)

    def _affinity(self, state: MachineState, qubit: int, zone_id: int, now: int) -> int:
        """Upcoming partners of ``qubit`` already resident in ``zone_id``."""
        score = 0
        seen = 0
        for index, partner in self._upcoming.get(qubit, ()):
            if index <= now:
                continue
            if state.zone_of(partner) == zone_id:
                score += 1
            seen += 1
            if seen >= self.lookahead:
                break
        return score

    def resolve(self, state: MachineState, gate: Gate) -> None:
        machine = state.machine
        qubit_a, qubit_b = gate.qubits
        zone_a = state.zone_of(qubit_a)
        zone_b = state.zone_of(qubit_b)
        now = self._cursor
        self._cursor += 1

        best: tuple | None = None
        best_plan: tuple[int, ...] | None = None
        for target in machine.zones:
            zone_id = target.zone_id
            movers = [
                q
                for q, current in ((qubit_a, zone_a), (qubit_b, zone_b))
                if current != zone_id
            ]
            hops = sum(
                machine.hop_distance(state.zone_of(q), zone_id) for q in movers
            )
            overflow = max(0, len(movers) - state.free_space(zone_id))
            affinity = sum(
                self._affinity(state, q, zone_id, now) for q in movers
            )
            # Shuttle work decides; affinity only breaks ties, so the
            # look-ahead never pays extra hops for speculative placement.
            cost = (hops + overflow, -affinity, hops)
            if best is None or cost < best:
                best = cost
                best_plan = (zone_id, *movers)
        assert best_plan is not None
        target_zone, *movers = best_plan
        make_room_simple(state, target_zone, len(movers), frozenset(gate.qubits))
        for qubit in movers:
            state.shuttle(qubit, target_zone)
