"""Baseline [70]: MQT-style shuttling compiler (Schoenberger et al., TCAD
2024, 'Shuttling for scalable trapped-ion quantum computers').

The MQT flow targets architectures with a *dedicated processing region*:
every two-qubit gate executes in the processing zone, so operands shuttle in
from their home traps, and ions are rotated back out as the zone fills.  On
a uniform grid we designate trap 0 as the processing zone and keep each
ion's home trap fixed (their model keeps a static home assignment for
deterministic schedules).

This policy is dramatically shuttle-hungrier than occupancy-aware greedy
compilation — matching its role in the paper's Table 2, where it posts the
highest shuttle counts on every application (e.g. 187 vs 73 on Adder_32).
"""

from __future__ import annotations

from ..circuits import Gate, QuantumCircuit
from ..core.state import MachineState, RoutingError
from ..hardware import Machine
from ..sim import Program
from .common import GridCompilerBase


class MqtLikeCompiler(GridCompilerBase):
    """Dedicated-processing-zone compiler (shuttle-heavy reference point)."""

    name = "QCCD-MQT"

    def __init__(self, processing_zone: int = 0) -> None:
        self.processing_zone = processing_zone
        self._home: dict[int, int] = {}

    def compile(
        self,
        circuit: QuantumCircuit,
        machine: Machine,
        initial_placement: dict[int, tuple[int, ...]] | None = None,
    ) -> Program:
        if self.processing_zone >= machine.num_zones:
            raise RoutingError(
                f"processing zone {self.processing_zone} does not exist on "
                f"{machine.num_zones}-zone machine"
            )
        self._home = {}
        return super().compile(circuit, machine, initial_placement)

    def placement(
        self, circuit: QuantumCircuit, machine: Machine
    ) -> dict[int, tuple[int, ...]]:
        """Home traps exclude the processing zone, which starts empty."""
        placement: dict[int, list[int]] = {}
        next_qubit = 0
        total = circuit.num_qubits
        for zone in machine.zones:
            if zone.zone_id == self.processing_zone or next_qubit >= total:
                continue
            take = min(zone.capacity, total - next_qubit)
            placement[zone.zone_id] = list(range(next_qubit, next_qubit + take))
            next_qubit += take
        if next_qubit < total:
            raise RoutingError(
                f"machine too small for {total} qubits outside the "
                "processing zone"
            )
        for zone_id, chain in placement.items():
            for qubit in chain:
                self._home[qubit] = zone_id
        return {zone_id: tuple(chain) for zone_id, chain in placement.items()}

    def _drain_for(self, state: MachineState, needed: int, protected: frozenset[int]) -> None:
        """Send idle ions home until the processing zone has ``needed`` room."""
        zone_id = self.processing_zone
        guard = 0
        while state.free_space(zone_id) < needed:
            guard += 1
            if guard > state.machine.zone(zone_id).capacity + 1:
                raise RoutingError("processing zone drain does not converge")
            victim = state.fifo_victim(zone_id, protected)
            home = self._home[victim]
            if state.free_space(home) < 1:
                # Home filled up meanwhile; park at the nearest open trap.
                open_traps = [
                    zone
                    for zone in state.machine.zones
                    if zone.zone_id != zone_id
                    and state.free_space(zone.zone_id) > 0
                ]
                if not open_traps:
                    raise RoutingError("no trap can absorb a drained ion")
                home = min(
                    open_traps,
                    key=lambda z: state.machine.hop_distance(zone_id, z.zone_id),
                ).zone_id
                self._home[victim] = home
            state.shuttle(victim, home)
            state.stats["evictions"] += 1

    def needs_resolution(self, state: MachineState, gate: Gate) -> bool:
        """Every two-qubit gate must run in the processing zone, even when
        its operands already share a home trap — the inflating constraint of
        the dedicated-zone model."""
        zone_id = self.processing_zone
        return any(state.zone_of(q) != zone_id for q in gate.qubits)

    def resolve(self, state: MachineState, gate: Gate) -> None:
        protected = frozenset(gate.qubits)
        zone_id = self.processing_zone
        movers = [q for q in gate.qubits if state.zone_of(q) != zone_id]
        self._drain_for(state, len(movers), protected)
        for qubit in movers:
            state.shuttle(qubit, zone_id)
