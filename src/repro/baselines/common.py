"""Shared scaffolding for the baseline QCCD-grid compilers.

All three baselines (Murali et al. [55], Dai et al. [13], the MQT-like
policy [70]) process the dependency DAG strictly first-come-first-served —
they do *not* reorder the frontier to prioritise already-executable gates,
which is one of MUSS-TI's contributions — and they differ only in how they
resolve a gate whose operands are in different traps
(:meth:`GridCompilerBase.resolve`).

They reuse :class:`~repro.core.state.MachineState` for chain bookkeeping and
op emission, so their schedules run through the same executor and physics as
MUSS-TI's: the comparison differs only in policy, exactly as in the paper.
"""

from __future__ import annotations

import time

from ..circuits import DependencyGraph, Gate, QuantumCircuit, validate_native
from ..core.state import MachineState, RoutingError
from ..hardware import Machine
from ..sim import Program


def block_placement(circuit: QuantumCircuit, machine: Machine) -> dict[int, tuple[int, ...]]:
    """Sequential trap-filling placement used by the grid baselines."""
    placement: dict[int, list[int]] = {}
    next_qubit = 0
    total = circuit.num_qubits
    for zone in machine.zones:
        if next_qubit >= total:
            break
        take = min(zone.capacity, total - next_qubit)
        placement[zone.zone_id] = list(range(next_qubit, next_qubit + take))
        next_qubit += take
    if next_qubit < total:
        raise RoutingError(
            f"machine too small for {total} qubits "
            f"(capacity {machine.total_capacity})"
        )
    return {zone_id: tuple(chain) for zone_id, chain in placement.items()}


class GridCompilerBase:
    """FCFS scheduling loop shared by the grid baselines."""

    name = "grid-baseline"

    def compile(
        self,
        circuit: QuantumCircuit,
        machine: Machine,
        initial_placement: dict[int, tuple[int, ...]] | None = None,
    ) -> Program:
        started = time.perf_counter()
        validate_native(circuit)
        if initial_placement is None:
            initial_placement = self.placement(circuit, machine)
        dag = DependencyGraph(circuit)
        state = MachineState(machine, initial_placement)
        while not dag.is_empty:
            node = dag.frontier()[0]
            gate = dag.gate(node)
            if gate.is_one_qubit:
                state.emit_one_qubit_gate(gate, node)
            else:
                if self.needs_resolution(state, gate):
                    self.resolve(state, gate)
                state.emit_local_gate(gate, node)
            dag.complete(node)
        elapsed = time.perf_counter() - started
        return Program(
            machine=machine,
            circuit=circuit,
            initial_placement=dict(initial_placement),
            operations=state.operations,
            compiler_name=self.name,
            compile_time_s=elapsed,
            metadata={key: float(value) for key, value in state.stats.items()},
            final_placement=state.final_placement(),
        )

    # -- extension points -------------------------------------------------

    def placement(
        self, circuit: QuantumCircuit, machine: Machine
    ) -> dict[int, tuple[int, ...]]:
        return block_placement(circuit, machine)

    def needs_resolution(self, state: MachineState, gate: Gate) -> bool:
        """Whether routing work is required before ``gate`` can fire."""
        return not state.co_located(*gate.qubits)

    def resolve(self, state: MachineState, gate: Gate) -> None:
        """Bring the two operands of ``gate`` into one trap."""
        raise NotImplementedError


def make_room_simple(
    state: MachineState, zone_id: int, needed: int, protected: frozenset[int]
) -> None:
    """Baseline conflict handling: push the chain-head resident to the
    nearest trap with space (no LRU, no level awareness)."""
    machine = state.machine
    guard = 0
    while state.free_space(zone_id) < needed:
        guard += 1
        if guard > machine.zone(zone_id).capacity + 1:
            raise RoutingError(f"eviction from zone {zone_id} does not converge")
        victim = state.fifo_victim(zone_id, protected)
        targets = [
            zone
            for zone in machine.zones
            if zone.zone_id != zone_id and state.free_space(zone.zone_id) > 0
        ]
        if not targets:
            raise RoutingError(f"no free trap to absorb eviction from {zone_id}")
        target = min(
            targets,
            key=lambda zone: (
                machine.hop_distance(zone_id, zone.zone_id),
                -state.free_space(zone.zone_id),
            ),
        )
        state.shuttle(victim, target.zone_id)
        state.stats["evictions"] += 1
