"""Baseline compilers the paper compares against (§4).

* :class:`MuraliCompiler` — [55] greedy shortest-path QCCD compilation.
* :class:`DaiCompiler` — [13] cost/look-ahead shuttle strategies.
* :class:`MqtLikeCompiler` — [70] dedicated-processing-zone policy.

All run on :class:`~repro.hardware.grid.QCCDGridMachine` instances and emit
the same op streams as MUSS-TI, so the executor compares them under
identical physics.
"""

from .common import GridCompilerBase, block_placement, make_room_simple
from .dai import DaiCompiler
from .mqt_like import MqtLikeCompiler
from .murali import MuraliCompiler

__all__ = [
    "DaiCompiler",
    "GridCompilerBase",
    "MqtLikeCompiler",
    "MuraliCompiler",
    "block_placement",
    "make_room_simple",
]
