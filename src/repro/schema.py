"""Shared JSON-schema validation with a stdlib fallback.

Every JSON artifact this repository emits — the ``BENCH_*.json``
microbenchmark payloads (:data:`repro.bench.micro.BENCH_SCHEMA`) and the
:meth:`repro.sim.ExecutionReport.to_dict` report payloads
(:data:`repro.sim.metrics.REPORT_SCHEMA`) — is validated against a JSON
Schema before it is written and after it is read back.  ``jsonschema``
is used when installed; otherwise :func:`validate_node` provides an
equivalent structural check for the subset of the spec those schemas
use (``const``, ``enum``, ``type``, ``required``, ``properties``,
``additionalProperties`` as ``False`` or a value schema, ``items``,
``minItems``, ``minLength``, ``minimum``, ``maximum``, ``anyOf``),
keeping the package itself stdlib-only.
"""

from __future__ import annotations

from typing import Any


class SchemaError(ValueError):
    """A payload does not conform to its declared JSON schema."""


def _check(condition: bool, message: str) -> None:
    if not condition:
        raise SchemaError(message)


def _check_bounds(value: Any, schema: dict, path: str) -> None:
    minimum = schema.get("minimum")
    if minimum is not None:
        _check(value >= minimum, f"{path}: {value} < minimum {minimum}")
    maximum = schema.get("maximum")
    if maximum is not None:
        _check(value <= maximum, f"{path}: {value} > maximum {maximum}")


def validate_node(value: Any, schema: dict, path: str = "$") -> None:
    """Structurally validate *value* against the supported schema subset.

    Raises :class:`SchemaError` with a ``$.path.to.field`` location on the
    first violation.
    """
    if "anyOf" in schema:
        first_error: SchemaError | None = None
        for branch in schema["anyOf"]:
            try:
                validate_node(value, branch, path)
                return
            except SchemaError as error:
                if first_error is None:
                    first_error = error
        raise SchemaError(
            f"{path}: matches none of the {len(schema['anyOf'])} allowed "
            f"forms (first failure: {first_error})"
        )
    if "const" in schema:
        _check(value == schema["const"], f"{path}: expected {schema['const']!r}")
        return
    if "enum" in schema:
        _check(
            value in schema["enum"],
            f"{path}: expected one of {schema['enum']!r}, got {value!r}",
        )
        return
    kind = schema.get("type")
    if kind == "object":
        _check(isinstance(value, dict), f"{path}: expected object")
        for name in schema.get("required", ()):
            _check(name in value, f"{path}: missing required field {name!r}")
        properties = schema.get("properties", {})
        additional = schema.get("additionalProperties")
        if additional is False:
            for name in value:
                _check(name in properties, f"{path}: unexpected field {name!r}")
        elif isinstance(additional, dict):
            for name, element in value.items():
                if name not in properties:
                    validate_node(element, additional, f"{path}.{name}")
        for name, sub in properties.items():
            if name in value:
                validate_node(value[name], sub, f"{path}.{name}")
    elif kind == "array":
        _check(isinstance(value, list), f"{path}: expected array")
        _check(
            len(value) >= schema.get("minItems", 0),
            f"{path}: expected at least {schema.get('minItems', 0)} item(s)",
        )
        items = schema.get("items")
        if items:
            for index, element in enumerate(value):
                validate_node(element, items, f"{path}[{index}]")
    elif kind == "string":
        _check(isinstance(value, str), f"{path}: expected string")
        _check(
            len(value) >= schema.get("minLength", 0), f"{path}: string too short"
        )
    elif kind == "integer":
        _check(
            isinstance(value, int) and not isinstance(value, bool),
            f"{path}: expected integer",
        )
        _check_bounds(value, schema, path)
    elif kind == "number":
        _check(
            isinstance(value, (int, float)) and not isinstance(value, bool),
            f"{path}: expected number",
        )
        _check_bounds(value, schema, path)
    elif kind == "boolean":
        _check(isinstance(value, bool), f"{path}: expected boolean")


def validate(payload: Any, schema: dict) -> None:
    """Raise :class:`SchemaError` unless *payload* conforms to *schema*.

    Uses ``jsonschema`` when installed, otherwise the built-in
    :func:`validate_node` structural check.
    """
    try:
        import jsonschema
    except ImportError:
        validate_node(payload, schema, "$")
        return
    try:
        jsonschema.validate(payload, schema)
    except jsonschema.ValidationError as error:
        raise SchemaError(str(error)) from error
