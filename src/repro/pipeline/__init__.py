"""Compiler registry and pass-pipeline subsystem.

Two public ideas live here:

* **Passes** — the MUSS-TI compiler decomposed into composable stages
  (validation, placement, the scheduling loop with a pluggable SWAP
  policy) run over a shared :class:`CompileContext` by a
  :class:`PassPipeline`.  The Fig 8 ablation arms are pipeline variants,
  assembled by :func:`build_muss_ti_pipeline`.
* **Registry** — one name -> factory table (:class:`CompilerRegistry`)
  every front-end resolves through, addressed by spec strings like
  ``"muss-ti?lookahead_k=4"``.  The built-in registrations (MUSS-TI, its
  ablation arms, the three grid baselines) load with this package; add
  your own with :func:`register_compiler`.

:func:`repro.compile` (defined in :mod:`repro.pipeline.facade`) is the
one-call front door over both.
"""

from .context import CompileContext, CompileResult
from .passes import (
    NoSwapInsertion,
    Pass,
    PassPipeline,
    PipelineError,
    SabrePlacementPass,
    SchedulingPass,
    SwapInsertionPolicy,
    TrivialPlacementPass,
    ValidateNativePass,
    WeightTableSwapInsertion,
    build_muss_ti_pipeline,
)
from .registry import (
    CompilerEntry,
    CompilerRegistry,
    available_compilers,
    coerce_option_value,
    default_registry,
    format_compiler_spec,
    parse_compiler_spec,
    parse_option_assignments,
    register_compiler,
    resolve_compiler,
)

# Populate the default registry with the paper's compilers.
from . import builtins as _builtins  # noqa: E402,F401
from .builtins import MUSS_TI_OPTIONS
from .facade import compile  # noqa: E402,A004

__all__ = [
    "CompileContext",
    "CompileResult",
    "CompilerEntry",
    "CompilerRegistry",
    "MUSS_TI_OPTIONS",
    "NoSwapInsertion",
    "Pass",
    "PassPipeline",
    "PipelineError",
    "SabrePlacementPass",
    "SchedulingPass",
    "SwapInsertionPolicy",
    "TrivialPlacementPass",
    "ValidateNativePass",
    "WeightTableSwapInsertion",
    "available_compilers",
    "build_muss_ti_pipeline",
    "coerce_option_value",
    "compile",
    "default_registry",
    "format_compiler_spec",
    "parse_compiler_spec",
    "parse_option_assignments",
    "register_compiler",
    "resolve_compiler",
]
