"""Shared state threaded through a pass pipeline.

A :class:`CompileContext` is the mutable scratch space every
:class:`~repro.pipeline.passes.Pass` reads and writes: the inputs (circuit,
machine, config), the artefacts produced so far (placement, dependency DAG,
machine state) and per-pass bookkeeping (wall time, counters, free-form
diagnostic notes).  A :class:`CompileResult` is the immutable outcome: the
executable :class:`~repro.sim.Program` plus the pipeline diagnostics that do
not belong in the program itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from ..circuits import DependencyGraph, QuantumCircuit
from ..hardware import Machine
from ..sim import Program

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..core.state import MachineState
    from ..physics import PhysicalParams
    from ..sim import ExecutionReport


@dataclass
class CompileContext:
    """Mutable state handed from pass to pass.

    ``placement`` starts as the caller-provided initial placement (or
    ``None``); a placement pass fills it in when absent.  ``dag`` and
    ``state`` are created by the first scheduling pass that needs them.
    """

    circuit: QuantumCircuit
    machine: Machine
    config: Any = None
    placement: dict[int, tuple[int, ...]] | None = None
    dag: DependencyGraph | None = None
    state: "MachineState | None" = None
    #: Per-pass counters and timings, keyed by pass name.
    pass_stats: dict[str, dict[str, float]] = field(default_factory=dict)
    #: Free-form notes a pass wants surfaced on the result.
    diagnostics: list[str] = field(default_factory=list)

    def record(self, pass_name: str, **counters: float) -> None:
        """Merge ``counters`` into the stats bucket of ``pass_name``."""
        self.pass_stats.setdefault(pass_name, {}).update(counters)

    def note(self, message: str) -> None:
        self.diagnostics.append(message)


@dataclass(frozen=True)
class CompileResult:
    """A compiled schedule plus pipeline-level diagnostics.

    Wraps the :class:`~repro.sim.Program` the class-based API returns, so
    callers that only need the program use ``result.program`` (or the
    convenience proxies below) and callers that care about the pipeline read
    ``pass_stats``/``diagnostics``.
    """

    program: Program
    pass_stats: dict[str, dict[str, float]] = field(default_factory=dict)
    diagnostics: tuple[str, ...] = ()

    # -- program proxies ------------------------------------------------

    @property
    def circuit(self) -> QuantumCircuit:
        return self.program.circuit

    @property
    def machine(self) -> Machine:
        return self.program.machine

    @property
    def compiler_name(self) -> str:
        return self.program.compiler_name

    @property
    def compile_time_s(self) -> float:
        return self.program.compile_time_s

    @property
    def num_operations(self) -> int:
        return self.program.num_operations

    @property
    def shuttle_count(self) -> int:
        return self.program.shuttle_count

    # -- one-stop verbs -------------------------------------------------

    def verify(self) -> "CompileResult":
        """Run both schedule-legality layers; raises on any bug."""
        from ..sim import verify_program

        verify_program(self.program)
        return self

    def execute(self, params: "PhysicalParams | None" = None) -> "ExecutionReport":
        """Execute the schedule under ``params`` (paper physics when None)."""
        from ..sim import execute

        return execute(self.program, params)
