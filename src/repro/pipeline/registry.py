"""Unified compiler registry: one name -> factory table for the whole repo.

Every compiler — MUSS-TI and its ablation arms, the three grid baselines,
and anything a downstream user registers — lives in one
:class:`CompilerRegistry`.  The CLI, the experiment drivers, the sweep
engine and the :func:`repro.compile` facade all resolve compilers through
it, so registering a compiler once makes it addressable everywhere.

Compilers are addressed by *spec strings*::

    muss-ti
    muss-ti?lookahead_k=4&optical_slack=0
    dai?lookahead=6

A spec is a registered name plus optional ``?key=value&...`` options.
Values coerce to bool (``true``/``false``/``yes``/``no``/``on``/``off``),
int, float, or stay strings; the entry validates option names against its
advertised set before instantiating.  Specs are plain strings, so sweep
cells stay picklable across the process pool and JSON-safe for the on-disk
result cache.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, Iterator, Mapping

from ..specstrings import NAME_RE as _NAME_RE
from ..specstrings import (
    coerce_option_value,  # noqa: F401  (re-exported public helper)
    format_query,
    parse_query,
    suggest_key,
)


def parse_compiler_spec(spec: str) -> tuple[str, dict[str, Any]]:
    """Split ``name?key=value&...`` into (name, coerced options)."""
    name, query_sep, query = spec.partition("?")
    name = name.strip()
    if not name:
        raise ValueError(f"compiler spec {spec!r} has no compiler name")
    options = parse_query(query, spec=spec) if query_sep else {}
    return name, options


def format_compiler_spec(name: str, options: Mapping[str, Any] | None = None) -> str:
    """Inverse of :func:`parse_compiler_spec` (options sorted by key)."""
    return format_query(name, options)


def parse_option_assignments(assignments: Iterable[str]) -> dict[str, Any]:
    """Parse ``key=value`` strings (e.g. repeated ``--set`` flags)."""
    options: dict[str, Any] = {}
    for assignment in assignments:
        key, eq, value = assignment.partition("=")
        key = key.strip()
        if not eq or not key:
            raise ValueError(
                f"bad override {assignment!r} (want key=value, "
                "e.g. --set lookahead_k=4)"
            )
        options[key] = coerce_option_value(value.strip())
    return options


@dataclass(frozen=True)
class CompilerEntry:
    """One registered compiler: factory plus the metadata the UIs need."""

    name: str
    factory: Callable[..., Any]
    summary: str = ""
    #: The hardware family the paper evaluates this compiler on
    #: ("grid" for the monolithic-QCCD baselines, "eml" for MUSS-TI).
    machine_family: str = "eml"
    #: Option names the factory accepts via spec strings / overrides.
    options: tuple[str, ...] = ()
    #: Column position in the paper's Table 2 (None: not a paper system).
    paper_order: int | None = None

    def create(self, options: Mapping[str, Any] | None = None) -> Any:
        """Instantiate, validating option names against the advertised set."""
        options = dict(options or {})
        unknown = sorted(set(options) - set(self.options))
        if unknown:
            valid = ", ".join(self.options) if self.options else "none"
            hint = suggest_key(unknown[0], self.options)
            raise ValueError(
                f"unknown option(s) for compiler {self.name!r}: "
                f"{', '.join(unknown)}{hint} (valid options: {valid})"
            )
        return self.factory(**options)


class CompilerRegistry:
    """Name -> :class:`CompilerEntry` table with spec-string resolution."""

    def __init__(self) -> None:
        self._entries: dict[str, CompilerEntry] = {}

    # -- registration ----------------------------------------------------

    def register(
        self,
        name: str,
        *,
        summary: str = "",
        machine_family: str = "eml",
        options: Iterable[str] = (),
        paper_order: int | None = None,
    ) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
        """Decorator registering ``factory`` under ``name``.

        ::

            @registry.register("my-compiler", options=("depth",))
            def make_my_compiler(depth: int = 4):
                return MyCompiler(depth)
        """

        def decorate(factory: Callable[..., Any]) -> Callable[..., Any]:
            self.add(
                CompilerEntry(
                    name=name,
                    factory=factory,
                    summary=summary,
                    machine_family=machine_family,
                    options=tuple(options),
                    paper_order=paper_order,
                )
            )
            return factory

        return decorate

    def add(self, entry: CompilerEntry) -> None:
        if not _NAME_RE.match(entry.name):
            raise ValueError(
                f"invalid compiler name {entry.name!r} "
                "(letters, digits, '.', '_', '-'; must not start with punctuation)"
            )
        if entry.name in self._entries:
            raise ValueError(
                f"compiler {entry.name!r} is already registered; "
                "pick a different name (re-registration is not allowed)"
            )
        # Families come from the machine registry, so a compiler can target
        # any registered hardware family (imported lazily: hardware never
        # imports pipeline, keeping the dependency one-way).
        from ..hardware.topology import machine_families

        families = machine_families()
        if entry.machine_family not in families:
            raise ValueError(
                f"machine_family must be a registered machine family "
                f"({', '.join(families)}), got {entry.machine_family!r}"
            )
        self._entries[entry.name] = entry

    # -- lookup ----------------------------------------------------------

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def __iter__(self) -> Iterator[CompilerEntry]:
        return iter(self._entries.values())

    def __len__(self) -> int:
        return len(self._entries)

    def names(self) -> list[str]:
        return sorted(self._entries)

    def entry(self, name: str) -> CompilerEntry:
        try:
            return self._entries[name]
        except KeyError:
            raise ValueError(
                f"unknown compiler {name!r} "
                f"(want one of {', '.join(self.names())})"
            ) from None

    def paper_suite(self) -> tuple[str, ...]:
        """The paper's compared systems, in Table 2 column order."""
        ranked = [e for e in self._entries.values() if e.paper_order is not None]
        ranked.sort(key=lambda e: e.paper_order)
        return tuple(e.name for e in ranked)

    def describe(self) -> str:
        """One ``name  summary`` line per registration, sorted by name."""
        width = max((len(name) for name in self._entries), default=0)
        return "\n".join(
            f"{name:{width}s}  {self._entries[name].summary}"
            for name in self.names()
        )

    # -- resolution ------------------------------------------------------

    def resolve(
        self,
        spec: str | Any,
        overrides: Mapping[str, Any] | None = None,
    ) -> Any:
        """Turn a spec string (or ready compiler instance) into a compiler.

        ``overrides`` merge over the spec's ``?key=value`` options (used by
        the CLI's ``--set`` flags).  A non-string ``spec`` must already be a
        compiler (anything with a ``compile`` method) and accepts no
        overrides.
        """
        if not isinstance(spec, str):
            if overrides:
                raise ValueError(
                    "option overrides need a compiler name, "
                    f"not a {type(spec).__name__} instance"
                )
            if hasattr(spec, "compile"):
                return spec
            raise TypeError(
                f"expected a compiler spec string or an object with a "
                f"compile() method, got {type(spec).__name__}"
            )
        name, options = parse_compiler_spec(spec)
        if overrides:
            options.update(overrides)
        return self.entry(name).create(options)


#: The process-wide registry every front-end resolves through.
_DEFAULT_REGISTRY = CompilerRegistry()


def default_registry() -> CompilerRegistry:
    """The registry the CLI, drivers and facade share."""
    return _DEFAULT_REGISTRY


def register_compiler(
    name: str,
    *,
    summary: str = "",
    machine_family: str = "eml",
    options: Iterable[str] = (),
    paper_order: int | None = None,
) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
    """``@register_compiler("name")`` on the default registry."""
    return _DEFAULT_REGISTRY.register(
        name,
        summary=summary,
        machine_family=machine_family,
        options=options,
        paper_order=paper_order,
    )


def resolve_compiler(
    spec: str | Any, overrides: Mapping[str, Any] | None = None
) -> Any:
    """Resolve a spec through the default registry."""
    return _DEFAULT_REGISTRY.resolve(spec, overrides)


def available_compilers() -> list[str]:
    """Sorted names registered in the default registry."""
    return _DEFAULT_REGISTRY.names()
