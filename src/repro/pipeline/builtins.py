"""Built-in registrations: the paper's four systems plus the ablation arms.

Importing :mod:`repro.pipeline` (or :mod:`repro`) loads this module, so the
default registry always knows the compilers the paper compares:

* ``murali`` / ``dai`` / ``mqt`` — the grid baselines (§4), Table 2 columns
  1-3, evaluated on monolithic QCCD grids.
* ``muss-ti`` — the full pipeline (SABRE + SWAP insertion), Table 2
  column 4, evaluated on EML-QCCD machines.
* ``trivial`` / ``sabre`` / ``swap-insert`` — the Fig 8 ablation arms,
  i.e. MUSS-TI pipelines with the placement pass and/or SWAP policy
  swapped out.

Every MUSS-TI-family entry accepts the :class:`~repro.core.config.
MussTiConfig` fields as spec options, e.g. ``muss-ti?lookahead_k=4`` or
``trivial?use_lru=false``.
"""

from __future__ import annotations

from dataclasses import fields, replace
from typing import Any, Callable

from ..baselines import DaiCompiler, MqtLikeCompiler, MuraliCompiler
from ..core import MussTiCompiler, MussTiConfig
from .registry import register_compiler

#: Every MussTiConfig field doubles as a spec option.
MUSS_TI_OPTIONS = tuple(field.name for field in fields(MussTiConfig))


def _muss_ti_family(
    base: Callable[[], MussTiConfig],
) -> Callable[..., MussTiCompiler]:
    """Factory over a config arm; spec options override individual fields."""

    def factory(**options: Any) -> MussTiCompiler:
        return MussTiCompiler(replace(base(), **options))

    return factory


register_compiler(
    "muss-ti",
    summary="full MUSS-TI: SABRE mapping + multi-level routing + SWAP insertion",
    machine_family="eml",
    options=MUSS_TI_OPTIONS,
    paper_order=3,
)(_muss_ti_family(MussTiConfig.full))

register_compiler(
    "trivial",
    summary="MUSS-TI ablation arm: trivial mapping, no SWAP insertion",
    machine_family="eml",
    options=MUSS_TI_OPTIONS,
)(_muss_ti_family(MussTiConfig.trivial))

register_compiler(
    "sabre",
    summary="MUSS-TI ablation arm: SABRE mapping only",
    machine_family="eml",
    options=MUSS_TI_OPTIONS,
)(_muss_ti_family(MussTiConfig.sabre_only))

register_compiler(
    "swap-insert",
    summary="MUSS-TI ablation arm: SWAP insertion only",
    machine_family="eml",
    options=MUSS_TI_OPTIONS,
)(_muss_ti_family(MussTiConfig.swap_insert_only))


@register_compiler(
    "murali",
    summary="Murali et al. [55]: greedy shortest-path QCCD compilation",
    machine_family="grid",
    paper_order=0,
)
def _make_murali() -> MuraliCompiler:
    return MuraliCompiler()


@register_compiler(
    "dai",
    summary="Dai et al. [13]: cost/look-ahead shuttle strategies",
    machine_family="grid",
    options=("lookahead",),
    paper_order=1,
)
def _make_dai(**options: Any) -> DaiCompiler:
    return DaiCompiler(**options)


@register_compiler(
    "mqt",
    summary="MQT IonShuttler-like [70]: dedicated-processing-zone policy",
    machine_family="grid",
    paper_order=2,
)
def _make_mqt() -> MqtLikeCompiler:
    return MqtLikeCompiler()
