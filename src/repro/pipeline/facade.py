"""The one-call front door: :func:`repro.compile`.

Accepts the flexible forms every front-end already speaks — a benchmark
name or a circuit, a machine spec string or a machine, a compiler spec
string / instance / :class:`~repro.pipeline.passes.PassPipeline` — and
returns a :class:`~repro.pipeline.context.CompileResult`::

    import repro

    result = repro.compile("GHZ_n32", "eml")
    print(result.execute().summary())

    result = repro.compile("Adder_n32", "grid:2x2:12", compiler="dai")
    result = repro.compile("BV_n64", "eml", compiler="muss-ti?lookahead_k=4")
    result = repro.compile("GHZ_n16", "ring:8:16")
    result = repro.compile("GHZ_n64", "file:examples/eml_4mod.json")
"""

from __future__ import annotations

from dataclasses import asdict, is_dataclass
from typing import Any, Mapping

from ..circuits import QuantumCircuit
from ..hardware import Machine, resolve_machine
from ..workloads import get_benchmark
from .context import CompileResult
from .passes import PassPipeline
from .registry import resolve_compiler


def _resolve_circuit(circuit_or_benchmark: QuantumCircuit | str) -> QuantumCircuit:
    if isinstance(circuit_or_benchmark, str):
        return get_benchmark(circuit_or_benchmark)
    return circuit_or_benchmark


def _config_overrides(config: Any) -> Mapping[str, Any] | None:
    """Normalise ``config`` into spec-option overrides (or None)."""
    if config is None:
        return None
    if isinstance(config, Mapping):
        return dict(config)
    if is_dataclass(config) and not isinstance(config, type):
        # e.g. a full MussTiConfig: every field becomes an override.
        return asdict(config)
    raise TypeError(
        "config must be a mapping of option overrides or a config "
        f"dataclass, got {type(config).__name__}"
    )


def _compile_with_instance(
    compiler: Any, circuit: QuantumCircuit, machine: Machine
) -> CompileResult:
    """Compile with a ready compiler object, preferring its pass pipeline."""
    pipeline_factory = getattr(compiler, "pipeline", None)
    if callable(pipeline_factory):
        pipeline = pipeline_factory()
        if isinstance(pipeline, PassPipeline):
            return pipeline.compile(circuit, machine)
    return CompileResult(program=compiler.compile(circuit, machine))


def compile(  # noqa: A001 - deliberate: repro.compile is the public verb
    circuit_or_benchmark: QuantumCircuit | str,
    machine: Machine | str,
    compiler: str | Any = "muss-ti",
    config: Any = None,
    verify: bool = False,
) -> CompileResult:
    """Compile a circuit (or named benchmark) onto a machine (or spec).

    Args:
        circuit_or_benchmark: a :class:`~repro.circuits.QuantumCircuit`, or
            a benchmark name such as ``"GHZ_n32"``.
        machine: a :class:`~repro.hardware.Machine`, or a machine-registry
            spec string such as ``"eml"``, ``"eml:12:2"``,
            ``"grid:2x2:12"``, ``"ring:8:16"``, ``"star:1+6:16"`` or
            ``"file:arch.json"`` (sized to the circuit where the spec
            allows).
        compiler: a registry spec string (``"muss-ti"``,
            ``"muss-ti?lookahead_k=4"``, ``"dai"``, ...), a compiler
            instance, or a :class:`~repro.pipeline.passes.PassPipeline`.
        config: option overrides for a spec-string compiler — a mapping
            (``{"lookahead_k": 4}``) or a config dataclass (e.g. a full
            :class:`~repro.core.config.MussTiConfig`).  Invalid with a
            ready compiler instance or pipeline.
        verify: run both schedule-legality layers before returning.

    Returns:
        A :class:`~repro.pipeline.context.CompileResult`; the raw
        :class:`~repro.sim.Program` is ``result.program``.
    """
    circuit = _resolve_circuit(circuit_or_benchmark)
    resolved_machine = resolve_machine(machine, circuit.num_qubits)
    overrides = _config_overrides(config)

    if isinstance(compiler, PassPipeline):
        if overrides is not None:
            raise ValueError(
                "config overrides are only valid with a compiler spec "
                "string, not a ready PassPipeline"
            )
        result = compiler.compile(circuit, resolved_machine)
    else:
        instance = resolve_compiler(compiler, overrides)
        result = _compile_with_instance(instance, circuit, resolved_machine)

    if verify:
        result.verify()
    return result
