"""Composable compilation passes and the pipeline that runs them.

The MUSS-TI compiler is a short sequence of passes over a shared
:class:`~repro.pipeline.context.CompileContext`:

1. :class:`ValidateNativePass` — reject circuits not lowered to the native
   gate set.
2. A placement pass — :class:`TrivialPlacementPass` (§3.4 sequential
   highest-level-first) or :class:`SabrePlacementPass` (§3.4 two-fold
   search).  Placement passes are no-ops when the caller supplied an
   initial placement.
3. :class:`SchedulingPass` — the Fig 3 interleaved loop: executable-first
   gate selection, multi-level routing with LRU eviction, and a pluggable
   post-fiber-gate :class:`SwapInsertionPolicy` (§3.3 weight-table rule, or
   none).

The Fig 8 ablation arms are therefore pipeline *variants*: swap the
placement pass and the SWAP policy instead of threading booleans through a
monolithic compiler.  :func:`build_muss_ti_pipeline` maps a
:class:`~repro.core.config.MussTiConfig` onto the matching variant, which
is exactly what :class:`~repro.core.compiler.MussTiCompiler` now wraps.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from heapq import heappop, heappush
from typing import Any, Protocol, runtime_checkable

from ..circuits import DependencyGraph, Gate, QuantumCircuit, validate_native
from ..core.config import MussTiConfig
from ..core.mapping import sabre_placement, trivial_placement
from ..core.routing import route_fiber_gate, route_local_gate
from ..core.state import MachineState
from ..core.swap_insertion import maybe_insert_swaps
from ..hardware import Machine
from ..sim import Program
from ..sim.ops import MergeOp, SwapGateOp
from ..sim.program import ArrayProgram
from .context import CompileContext, CompileResult


class PipelineError(Exception):
    """A pipeline was assembled or driven incorrectly."""


def _link_key(module_a: int, module_b: int) -> tuple[int, int]:
    """Normalised optical-link name, matching ``TopologyMaps.blocked_links``."""
    return (module_a, module_b) if module_a < module_b else (module_b, module_a)


@runtime_checkable
class Pass(Protocol):
    """One stage of a compiler pipeline.

    A pass mutates the :class:`CompileContext` in place — filling in the
    placement, emitting operations through the machine state, recording
    stats — and returns nothing.
    """

    name: str

    def run(self, context: CompileContext) -> None: ...


@runtime_checkable
class SwapInsertionPolicy(Protocol):
    """Post-gate hook of the scheduling loop (runs after fiber gates)."""

    name: str

    def after_fiber_gate(
        self, state: MachineState, dag: DependencyGraph, gate: Gate
    ) -> int: ...


# ---------------------------------------------------------------------------
# SWAP-insertion policies
# ---------------------------------------------------------------------------


class NoSwapInsertion:
    """Ablation arms without §3.3: never insert a remote SWAP."""

    name = "none"

    def after_fiber_gate(
        self, state: MachineState, dag: DependencyGraph, gate: Gate
    ) -> int:
        return 0


class WeightTableSwapInsertion:
    """The §3.3 weight-table rule, applied after every fiber gate."""

    name = "weight-table"

    def __init__(self, config: MussTiConfig) -> None:
        # Constructing this policy *is* the decision to insert SWAPs; don't
        # let a config built for another arm silently disable it (the
        # engine in maybe_insert_swaps re-checks the flag).
        if not config.use_swap_insertion:
            config = replace(config, use_swap_insertion=True)
        self.config = config

    def after_fiber_gate(
        self, state: MachineState, dag: DependencyGraph, gate: Gate
    ) -> int:
        return maybe_insert_swaps(state, dag, self.config, gate)


# ---------------------------------------------------------------------------
# Passes
# ---------------------------------------------------------------------------


class ValidateNativePass:
    """Reject circuits that were not lowered to the native gate set."""

    name = "validate-native"

    def run(self, context: CompileContext) -> None:
        validate_native(context.circuit)


class TrivialPlacementPass:
    """§3.4 'Trivial Mapping': sequential highest-level-first placement."""

    name = "placement-trivial"

    def run(self, context: CompileContext) -> None:
        if context.placement is not None:
            context.note(f"{self.name}: caller-provided placement kept")
            return
        context.placement = trivial_placement(context.circuit, context.machine)
        context.record(self.name, placed_qubits=float(context.circuit.num_qubits))


def _context_config(
    own: MussTiConfig | None, context: CompileContext
) -> MussTiConfig:
    """A pass's knobs: its own config, else the pipeline-level one."""
    if own is not None:
        return own
    if isinstance(context.config, MussTiConfig):
        return context.config
    return MussTiConfig()


class SabrePlacementPass:
    """§3.4 'SABRE': two-fold search seeded from the trivial placement.

    Constructed without a config, it reads the pipeline-level one from the
    context at run time.
    """

    name = "placement-sabre"

    def __init__(self, config: MussTiConfig | None = None) -> None:
        self.config = config

    def run(self, context: CompileContext) -> None:
        if context.placement is not None:
            context.note(f"{self.name}: caller-provided placement kept")
            return
        context.placement = sabre_placement(
            context.circuit, context.machine, _context_config(self.config, context)
        )
        context.record(self.name, placed_qubits=float(context.circuit.num_qubits))


class _EventDrivenScheduler:
    """Event-driven engine behind :class:`SchedulingPass`.

    The seed implementation drained the frontier with repeated full passes:
    scan every ready gate in FCFS order, execute what fits the hardware,
    and rescan until a whole pass makes no progress.  That re-examines
    every blocked gate once per pass even though a two-qubit gate's
    executability is a pure function of its two operands' zones — it can
    only change when one of those ions *moves*.

    This engine keeps the exact same examination order but skips the
    no-op re-checks, driven by two ready-event heaps:

    * ``current`` — the gates still to examine in this pass, a min-heap so
      examination stays in FCFS (ascending node id) order;
    * ``pending`` — the events for the next pass: gates whose dependencies
      just resolved, and blocked gates whose operands just moved at or
      before the examination cursor.

    Blocked gates park as *watchers* on their operand qubits.  When a
    shuttle merge or an inserted SWAP moves qubit ``q`` (detected from the
    ops appended to the machine state), ``q``'s watchers re-enter
    ``current`` when they sit past the cursor — the seed's pass would
    still reach them this sweep — and ``pending`` otherwise.  A stalled
    frontier (both heaps empty) falls through to the router, exactly like
    the seed's no-progress pass.

    The replay is order-exact, not merely equivalent: the differential
    suite pins the emitted op streams byte-for-byte against the frozen
    seed copy.
    """

    _CLEAN, _CURRENT, _PENDING = 0, 1, 2

    def __init__(
        self,
        dag: DependencyGraph,
        state: MachineState,
        config: MussTiConfig,
        policy: SwapInsertionPolicy,
    ) -> None:
        self.dag = dag
        self.state = state
        self.config = config
        self.policy = policy
        maps = state.maps
        self._allows_gates = maps.zone_allows_gates
        self._allows_fiber = maps.zone_allows_fiber
        self._zone_module = maps.zone_module
        self._blocked_links = maps.blocked_links
        #: frontier node -> _CLEAN (parked watcher) / _CURRENT / _PENDING.
        self.status: dict[int, int] = {}
        #: qubit -> set of _CLEAN frontier nodes blocked on it.
        self.watchers: dict[int, set[int]] = {}
        # A sorted list is a valid min-heap; dag.frontier() is ascending.
        self.current: list[int] = dag.frontier()
        self.pending: list[int] = []
        for node in self.current:
            self.status[node] = self._CURRENT
        #: High-water mark into ``state.operations`` for move detection.
        self.ops_seen = len(state.operations)

    def run(self) -> None:
        dag = self.dag
        while True:
            self._drain()
            if dag.is_empty:
                return
            self._route_oldest()

    # -- stage 1: executable-first gate selection ----------------------

    def _drain(self) -> None:
        """Execute frontier gates that already meet hardware requirements."""
        dag, state = self.dag, self.state
        status = self.status
        location = state.location
        allows_gates = self._allows_gates
        allows_fiber = self._allows_fiber
        zone_module = self._zone_module
        blocked_links = self._blocked_links
        while True:
            if not self.current:
                if not self.pending:
                    return
                # Pass boundary: next pass examines last pass's events.
                self.pending.sort()
                self.current = self.pending
                self.pending = []
                for node in self.current:
                    status[node] = self._CURRENT
            while self.current:
                node = heappop(self.current)
                gate = dag.gate(node)
                qubits = gate.qubits
                if len(qubits) == 1:
                    state.emit_one_qubit_gate(gate, node)
                    self._on_completed(node, dag.complete(node))
                    continue
                qubit_a, qubit_b = qubits
                zone_a = location[qubit_a]
                zone_b = location[qubit_b]
                if zone_a == zone_b:
                    if allows_gates[zone_a]:
                        state.emit_local_gate(gate, node)
                        self._on_completed(node, dag.complete(node))
                        continue
                elif (
                    allows_fiber[zone_a]
                    and allows_fiber[zone_b]
                    and zone_module[zone_a] != zone_module[zone_b]
                    and (
                        not blocked_links
                        or _link_key(zone_module[zone_a], zone_module[zone_b])
                        not in blocked_links
                    )
                ):
                    state.emit_fiber_gate(gate, node)
                    newly_ready = dag.complete(node)
                    self.policy.after_fiber_gate(state, dag, gate)
                    self._on_completed(node, newly_ready)
                    self._note_moves(cursor=node)
                    continue
                # Blocked: park as a watcher until an operand moves.
                status[node] = self._CLEAN
                watchers = self.watchers
                for qubit in qubits:
                    bucket = watchers.get(qubit)
                    if bucket is None:
                        bucket = watchers[qubit] = set()
                    bucket.add(node)

    # -- stage 2 + 3: routing and the post-gate policy ------------------

    def _route_oldest(self) -> None:
        """FCFS fallback: route and fire the oldest frontier two-qubit gate."""
        dag, state, config = self.dag, self.state, self.config
        # At a stall ``status`` holds exactly the frontier (all parked), so
        # the FCFS pick is its minimum — no need to sort the frontier.
        node = min(self.status)
        gate = dag.gate(node)
        qubit_a, qubit_b = gate.qubits
        k = config.lookahead_k
        partners_index = dag.lookahead_partners(k)
        future_qubits = dag.lookahead_qubits(k)
        if state.same_module(qubit_a, qubit_b):
            # Local gates route without slack: batch demotion only pays for
            # itself on the fiber path, where arrivals are one-directional.
            route_local_gate(
                state,
                qubit_a,
                qubit_b,
                use_lru=config.use_lru,
                lookahead=(partners_index, future_qubits),
            )
            state.emit_local_gate(gate, node)
            newly_ready = dag.complete(node)
        else:
            route_fiber_gate(
                state,
                qubit_a,
                qubit_b,
                use_lru=config.use_lru,
                future_qubits=future_qubits,
                slack=config.optical_slack,
            )
            state.emit_fiber_gate(gate, node)
            newly_ready = dag.complete(node)
            self.policy.after_fiber_gate(state, dag, gate)
        # At a stall every frontier node is a parked watcher, including the
        # node just routed: unpark it, then queue the fallout for the next
        # drain pass (the seed rescans the frontier after routing).
        self._unwatch(node, gate)
        del self.status[node]
        self._on_newly_ready(newly_ready)
        self._note_moves(cursor=None)

    # -- event bookkeeping ----------------------------------------------

    def _on_completed(self, node: int, newly_ready: list[int]) -> None:
        del self.status[node]
        self._on_newly_ready(newly_ready)

    def _on_newly_ready(self, newly_ready: list[int]) -> None:
        status = self.status
        pending = self.pending
        for node in newly_ready:
            status[node] = self._PENDING
            pending.append(node)

    def _unwatch(self, node: int, gate: Gate) -> None:
        watchers = self.watchers
        for qubit in gate.qubits:
            bucket = watchers.get(qubit)
            if bucket is not None:
                bucket.discard(node)

    def _note_moves(self, cursor: int | None) -> None:
        """Wake the watchers of every qubit that moved since the last scan.

        A qubit changes zones exactly when a shuttle completes (``MergeOp``)
        or a logical SWAP relabels two chain slots (``SwapGateOp``); gate
        and transport ops in between cannot affect executability.  With a
        ``cursor`` (mid-pass, after a fiber gate's SWAP policy) watchers
        past the cursor re-enter the current pass — the seed's sweep would
        still reach them — and earlier ones wait for the next pass.
        """
        operations = self.state.operations
        seen = self.ops_seen
        if seen == len(operations):
            return
        self.ops_seen = len(operations)
        watchers = self.watchers
        status = self.status
        dag = self.dag
        for op in operations[seen:]:
            op_type = type(op)
            if op_type is MergeOp:
                moved = (op.qubit,)
            elif op_type is SwapGateOp:
                moved = (op.qubit_a, op.qubit_b)
            else:
                continue
            for qubit in moved:
                bucket = watchers.get(qubit)
                if not bucket:
                    continue
                for node in tuple(bucket):
                    self._unwatch(node, dag.gate(node))
                    if cursor is not None and node > cursor:
                        status[node] = self._CURRENT
                        heappush(self.current, node)
                    else:
                        status[node] = self._PENDING
                        self.pending.append(node)


class SchedulingPass:
    """The Fig 3 loop: gate selection, multi-level routing, post-gate policy.

    Interleaves three stages until the dependency DAG is empty:

    1. **Gate selection** — execute every frontier gate that already meets
       the hardware requirement (one-qubit gates anywhere; two-qubit gates
       whose operands are co-located in a gate-capable zone, or sitting in
       optical zones of two different modules).
    2. **Qubit routing** — when nothing is executable, take the frontier's
       oldest two-qubit gate (first-come, first-served) and route its
       operands: same-module gates to the best local zone by the
       multi-level policy, cross-module gates into their optical zones for
       a fiber gate.  Zone conflicts are resolved by LRU eviction to lower
       levels (page-fault analogy, Fig 4).
    3. **Post-gate policy** — after each cross-module gate, the configured
       :class:`SwapInsertionPolicy` may insert a remote logical SWAP to
       migrate a qubit to the module where its upcoming partners live
       (Fig 5).

    Gate selection runs on the event-driven :class:`_EventDrivenScheduler`
    (ready-event heaps plus operand watchers) instead of repeated frontier
    rescans; the emitted schedule is byte-identical to the seed loop.

    Constructed without a config, the pass reads the pipeline-level one
    from the context at run time (and derives the default SWAP policy
    from it).
    """

    name = "schedule"

    def __init__(
        self,
        config: MussTiConfig | None = None,
        swap_policy: SwapInsertionPolicy | None = None,
    ) -> None:
        self.config = config
        if swap_policy is None and config is not None:
            swap_policy = self._default_policy(config)
        self.swap_policy = swap_policy

    @staticmethod
    def _default_policy(config: MussTiConfig) -> SwapInsertionPolicy:
        if config.use_swap_insertion:
            return WeightTableSwapInsertion(config)
        return NoSwapInsertion()

    def run(self, context: CompileContext) -> None:
        if context.placement is None:
            raise PipelineError(
                "SchedulingPass needs a placement; run a placement pass first "
                "or pass initial_placement to compile()"
            )
        config = _context_config(self.config, context)
        policy = self.swap_policy or self._default_policy(config)
        if context.dag is None and context.state is None:
            # Fresh context: try the array-core engine (flat int state,
            # packed op records — byte-identical schedules, no op objects).
            from ..core.arraycore import try_array_schedule

            state = try_array_schedule(
                context.circuit, context.machine, context.placement,
                config, policy,
            )
            if state is not None:
                context.state = state
                context.record(
                    self.name,
                    scheduled_gates=float(len(context.circuit)),
                    inserted_swaps=float(state.stats.get("inserted_swaps", 0)),
                )
                return
        if context.dag is None:
            context.dag = DependencyGraph(context.circuit)
        if context.state is None:
            context.state = MachineState(context.machine, context.placement)
        _EventDrivenScheduler(context.dag, context.state, config, policy).run()
        context.record(
            self.name,
            scheduled_gates=float(len(context.circuit)),
            inserted_swaps=float(context.state.stats.get("inserted_swaps", 0)),
        )


# ---------------------------------------------------------------------------
# The pipeline
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PassPipeline:
    """An ordered pass sequence that compiles circuits onto machines.

    ``name`` becomes the program's ``compiler_name``; ``config`` is carried
    on the context, and passes constructed without their own config (e.g.
    a bare ``SchedulingPass()``) read their knobs from it at run time.
    """

    name: str
    passes: tuple[Pass, ...]
    config: Any = None

    def describe(self) -> str:
        """``validate-native -> placement-sabre -> schedule`` style summary."""
        return " -> ".join(p.name for p in self.passes)

    def compile(
        self,
        circuit: QuantumCircuit,
        machine: Machine,
        initial_placement: dict[int, tuple[int, ...]] | None = None,
    ) -> CompileResult:
        """Run every pass in order; returns the schedule + diagnostics."""
        started = time.perf_counter()
        context = CompileContext(
            circuit=circuit,
            machine=machine,
            config=self.config,
            placement=None if initial_placement is None else dict(initial_placement),
        )
        for stage in self.passes:
            stage_started = time.perf_counter()
            stage.run(context)
            context.record(
                stage.name, seconds=time.perf_counter() - stage_started
            )
        if context.state is None or context.placement is None:
            raise PipelineError(
                f"pipeline {self.name!r} produced no schedule "
                f"(passes: {self.describe() or 'none'}); add a SchedulingPass"
            )
        elapsed = time.perf_counter() - started
        packed = getattr(context.state, "packed_ops", None)
        if packed is not None and not context.state.operations:
            program: Program = ArrayProgram(
                machine=machine,
                circuit=circuit,
                initial_placement=dict(context.placement),
                packed=packed,
                compiler_name=self.name,
                compile_time_s=elapsed,
                metadata={
                    key: float(value)
                    for key, value in context.state.stats.items()
                },
                final_placement=context.state.final_placement(),
            )
            return CompileResult(
                program=program,
                pass_stats={
                    name: dict(s) for name, s in context.pass_stats.items()
                },
                diagnostics=tuple(context.diagnostics),
            )
        program = Program(
            machine=machine,
            circuit=circuit,
            initial_placement=dict(context.placement),
            operations=context.state.operations,
            compiler_name=self.name,
            compile_time_s=elapsed,
            metadata={
                key: float(value) for key, value in context.state.stats.items()
            },
            final_placement=context.state.final_placement(),
        )
        return CompileResult(
            program=program,
            pass_stats={name: dict(s) for name, s in context.pass_stats.items()},
            diagnostics=tuple(context.diagnostics),
        )


def build_muss_ti_pipeline(
    config: MussTiConfig | None = None, name: str = "MUSS-TI"
) -> PassPipeline:
    """Assemble the pipeline variant matching a :class:`MussTiConfig`.

    The four Fig 8 ablation arms map onto the four (placement pass, SWAP
    policy) combinations; the scheduling loop itself is shared.
    """
    config = config or MussTiConfig()
    placement: Pass = (
        SabrePlacementPass(config)
        if config.use_sabre_mapping
        else TrivialPlacementPass()
    )
    return PassPipeline(
        name=name,
        passes=(ValidateNativePass(), placement, SchedulingPass(config)),
        config=config,
    )
