"""Composable compilation passes and the pipeline that runs them.

The MUSS-TI compiler is a short sequence of passes over a shared
:class:`~repro.pipeline.context.CompileContext`:

1. :class:`ValidateNativePass` — reject circuits not lowered to the native
   gate set.
2. A placement pass — :class:`TrivialPlacementPass` (§3.4 sequential
   highest-level-first) or :class:`SabrePlacementPass` (§3.4 two-fold
   search).  Placement passes are no-ops when the caller supplied an
   initial placement.
3. :class:`SchedulingPass` — the Fig 3 interleaved loop: executable-first
   gate selection, multi-level routing with LRU eviction, and a pluggable
   post-fiber-gate :class:`SwapInsertionPolicy` (§3.3 weight-table rule, or
   none).

The Fig 8 ablation arms are therefore pipeline *variants*: swap the
placement pass and the SWAP policy instead of threading booleans through a
monolithic compiler.  :func:`build_muss_ti_pipeline` maps a
:class:`~repro.core.config.MussTiConfig` onto the matching variant, which
is exactly what :class:`~repro.core.compiler.MussTiCompiler` now wraps.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import Any, Protocol, runtime_checkable

from ..circuits import DependencyGraph, Gate, QuantumCircuit, validate_native
from ..core.config import MussTiConfig
from ..core.mapping import sabre_placement, trivial_placement
from ..core.routing import route_fiber_gate, route_local_gate
from ..core.state import MachineState
from ..core.swap_insertion import maybe_insert_swaps
from ..hardware import Machine
from ..sim import Program
from .context import CompileContext, CompileResult


class PipelineError(Exception):
    """A pipeline was assembled or driven incorrectly."""


@runtime_checkable
class Pass(Protocol):
    """One stage of a compiler pipeline.

    A pass mutates the :class:`CompileContext` in place — filling in the
    placement, emitting operations through the machine state, recording
    stats — and returns nothing.
    """

    name: str

    def run(self, context: CompileContext) -> None: ...


@runtime_checkable
class SwapInsertionPolicy(Protocol):
    """Post-gate hook of the scheduling loop (runs after fiber gates)."""

    name: str

    def after_fiber_gate(
        self, state: MachineState, dag: DependencyGraph, gate: Gate
    ) -> int: ...


# ---------------------------------------------------------------------------
# SWAP-insertion policies
# ---------------------------------------------------------------------------


class NoSwapInsertion:
    """Ablation arms without §3.3: never insert a remote SWAP."""

    name = "none"

    def after_fiber_gate(
        self, state: MachineState, dag: DependencyGraph, gate: Gate
    ) -> int:
        return 0


class WeightTableSwapInsertion:
    """The §3.3 weight-table rule, applied after every fiber gate."""

    name = "weight-table"

    def __init__(self, config: MussTiConfig) -> None:
        # Constructing this policy *is* the decision to insert SWAPs; don't
        # let a config built for another arm silently disable it (the
        # engine in maybe_insert_swaps re-checks the flag).
        if not config.use_swap_insertion:
            config = replace(config, use_swap_insertion=True)
        self.config = config

    def after_fiber_gate(
        self, state: MachineState, dag: DependencyGraph, gate: Gate
    ) -> int:
        return maybe_insert_swaps(state, dag, self.config, gate)


# ---------------------------------------------------------------------------
# Passes
# ---------------------------------------------------------------------------


class ValidateNativePass:
    """Reject circuits that were not lowered to the native gate set."""

    name = "validate-native"

    def run(self, context: CompileContext) -> None:
        validate_native(context.circuit)


class TrivialPlacementPass:
    """§3.4 'Trivial Mapping': sequential highest-level-first placement."""

    name = "placement-trivial"

    def run(self, context: CompileContext) -> None:
        if context.placement is not None:
            context.note(f"{self.name}: caller-provided placement kept")
            return
        context.placement = trivial_placement(context.circuit, context.machine)
        context.record(self.name, placed_qubits=float(context.circuit.num_qubits))


def _context_config(
    own: MussTiConfig | None, context: CompileContext
) -> MussTiConfig:
    """A pass's knobs: its own config, else the pipeline-level one."""
    if own is not None:
        return own
    if isinstance(context.config, MussTiConfig):
        return context.config
    return MussTiConfig()


class SabrePlacementPass:
    """§3.4 'SABRE': two-fold search seeded from the trivial placement.

    Constructed without a config, it reads the pipeline-level one from the
    context at run time.
    """

    name = "placement-sabre"

    def __init__(self, config: MussTiConfig | None = None) -> None:
        self.config = config

    def run(self, context: CompileContext) -> None:
        if context.placement is not None:
            context.note(f"{self.name}: caller-provided placement kept")
            return
        context.placement = sabre_placement(
            context.circuit, context.machine, _context_config(self.config, context)
        )
        context.record(self.name, placed_qubits=float(context.circuit.num_qubits))


class SchedulingPass:
    """The Fig 3 loop: gate selection, multi-level routing, post-gate policy.

    Interleaves three stages until the dependency DAG is empty:

    1. **Gate selection** — execute every frontier gate that already meets
       the hardware requirement (one-qubit gates anywhere; two-qubit gates
       whose operands are co-located in a gate-capable zone, or sitting in
       optical zones of two different modules).
    2. **Qubit routing** — when nothing is executable, take the frontier's
       oldest two-qubit gate (first-come, first-served) and route its
       operands: same-module gates to the best local zone by the
       multi-level policy, cross-module gates into their optical zones for
       a fiber gate.  Zone conflicts are resolved by LRU eviction to lower
       levels (page-fault analogy, Fig 4).
    3. **Post-gate policy** — after each cross-module gate, the configured
       :class:`SwapInsertionPolicy` may insert a remote logical SWAP to
       migrate a qubit to the module where its upcoming partners live
       (Fig 5).

    Constructed without a config, the pass reads the pipeline-level one
    from the context at run time (and derives the default SWAP policy
    from it).
    """

    name = "schedule"

    def __init__(
        self,
        config: MussTiConfig | None = None,
        swap_policy: SwapInsertionPolicy | None = None,
    ) -> None:
        self.config = config
        if swap_policy is None and config is not None:
            swap_policy = self._default_policy(config)
        self.swap_policy = swap_policy

    @staticmethod
    def _default_policy(config: MussTiConfig) -> SwapInsertionPolicy:
        if config.use_swap_insertion:
            return WeightTableSwapInsertion(config)
        return NoSwapInsertion()

    def run(self, context: CompileContext) -> None:
        if context.placement is None:
            raise PipelineError(
                "SchedulingPass needs a placement; run a placement pass first "
                "or pass initial_placement to compile()"
            )
        config = _context_config(self.config, context)
        policy = self.swap_policy or self._default_policy(config)
        if context.dag is None:
            context.dag = DependencyGraph(context.circuit)
        if context.state is None:
            context.state = MachineState(context.machine, context.placement)
        dag, state = context.dag, context.state
        while not dag.is_empty:
            self._drain_executable(dag, state, policy)
            if dag.is_empty:
                break
            self._route_and_execute_oldest(dag, state, config, policy)
        context.record(
            self.name,
            scheduled_gates=float(len(context.circuit)),
            inserted_swaps=float(state.stats.get("inserted_swaps", 0)),
        )

    # -- stage 1: executable-first gate selection ----------------------

    def _drain_executable(
        self,
        dag: DependencyGraph,
        state: MachineState,
        policy: SwapInsertionPolicy,
    ) -> None:
        """Execute frontier gates that already meet hardware requirements."""
        progressed = True
        while progressed:
            progressed = False
            for node in dag.frontier():
                gate = dag.gate(node)
                if gate.is_one_qubit:
                    state.emit_one_qubit_gate(gate, node)
                    dag.complete(node)
                    progressed = True
                elif self._execute_if_ready(dag, state, node, gate, policy):
                    progressed = True

    def _execute_if_ready(
        self,
        dag: DependencyGraph,
        state: MachineState,
        node: int,
        gate: Gate,
        policy: SwapInsertionPolicy,
    ) -> bool:
        qubit_a, qubit_b = gate.qubits
        zone_a = state.zone_of(qubit_a)
        zone_b = state.zone_of(qubit_b)
        if zone_a == zone_b and state.machine.zone(zone_a).allows_gates:
            state.emit_local_gate(gate, node)
            dag.complete(node)
            return True
        machine = state.machine
        if (
            machine.zone(zone_a).allows_fiber
            and machine.zone(zone_b).allows_fiber
            and machine.zone(zone_a).module_id != machine.zone(zone_b).module_id
        ):
            state.emit_fiber_gate(gate, node)
            dag.complete(node)
            policy.after_fiber_gate(state, dag, gate)
            return True
        return False

    # -- stage 2 + 3: routing and the post-gate policy ------------------

    def _route_and_execute_oldest(
        self,
        dag: DependencyGraph,
        state: MachineState,
        config: MussTiConfig,
        policy: SwapInsertionPolicy,
    ) -> None:
        """FCFS fallback: route and fire the oldest frontier two-qubit gate."""
        node = dag.frontier()[0]
        gate = dag.gate(node)
        qubit_a, qubit_b = gate.qubits
        future_pairs = [
            g.qubits
            for _, g in dag.gates_within_layers(config.lookahead_k)
            if g.is_two_qubit
        ]
        if state.same_module(qubit_a, qubit_b):
            # Local gates route without slack: batch demotion only pays for
            # itself on the fiber path, where arrivals are one-directional.
            route_local_gate(
                state,
                qubit_a,
                qubit_b,
                use_lru=config.use_lru,
                future_pairs=future_pairs,
            )
            state.emit_local_gate(gate, node)
            dag.complete(node)
        else:
            future_qubits = frozenset(q for pair in future_pairs for q in pair)
            route_fiber_gate(
                state,
                qubit_a,
                qubit_b,
                use_lru=config.use_lru,
                future_qubits=future_qubits,
                slack=config.optical_slack,
            )
            state.emit_fiber_gate(gate, node)
            dag.complete(node)
            policy.after_fiber_gate(state, dag, gate)


# ---------------------------------------------------------------------------
# The pipeline
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PassPipeline:
    """An ordered pass sequence that compiles circuits onto machines.

    ``name`` becomes the program's ``compiler_name``; ``config`` is carried
    on the context, and passes constructed without their own config (e.g.
    a bare ``SchedulingPass()``) read their knobs from it at run time.
    """

    name: str
    passes: tuple[Pass, ...]
    config: Any = None

    def describe(self) -> str:
        """``validate-native -> placement-sabre -> schedule`` style summary."""
        return " -> ".join(p.name for p in self.passes)

    def compile(
        self,
        circuit: QuantumCircuit,
        machine: Machine,
        initial_placement: dict[int, tuple[int, ...]] | None = None,
    ) -> CompileResult:
        """Run every pass in order; returns the schedule + diagnostics."""
        started = time.perf_counter()
        context = CompileContext(
            circuit=circuit,
            machine=machine,
            config=self.config,
            placement=None if initial_placement is None else dict(initial_placement),
        )
        for stage in self.passes:
            stage_started = time.perf_counter()
            stage.run(context)
            context.record(
                stage.name, seconds=time.perf_counter() - stage_started
            )
        if context.state is None or context.placement is None:
            raise PipelineError(
                f"pipeline {self.name!r} produced no schedule "
                f"(passes: {self.describe() or 'none'}); add a SchedulingPass"
            )
        elapsed = time.perf_counter() - started
        program = Program(
            machine=machine,
            circuit=circuit,
            initial_placement=dict(context.placement),
            operations=context.state.operations,
            compiler_name=self.name,
            compile_time_s=elapsed,
            metadata={
                key: float(value) for key, value in context.state.stats.items()
            },
            final_placement=context.state.final_placement(),
        )
        return CompileResult(
            program=program,
            pass_stats={name: dict(s) for name, s in context.pass_stats.items()},
            diagnostics=tuple(context.diagnostics),
        )


def build_muss_ti_pipeline(
    config: MussTiConfig | None = None, name: str = "MUSS-TI"
) -> PassPipeline:
    """Assemble the pipeline variant matching a :class:`MussTiConfig`.

    The four Fig 8 ablation arms map onto the four (placement pass, SWAP
    policy) combinations; the scheduling loop itself is shared.
    """
    config = config or MussTiConfig()
    placement: Pass = (
        SabrePlacementPass(config)
        if config.use_sabre_mapping
        else TrivialPlacementPass()
    )
    return PassPipeline(
        name=name,
        passes=(ValidateNativePass(), placement, SchedulingPass(config)),
        config=config,
    )
