"""Shared spec-string grammar helpers.

Both registries — compilers (:mod:`repro.pipeline.registry`) and machines
(:mod:`repro.hardware.topology`) — address their entries with *spec
strings*: a registered name plus optional ``?key=value&...`` options.
This module owns the pieces of that grammar they share, so the two
registries parse and canonicalise options identically:

* :func:`coerce_option_value` — value coercion (bool words, int, float,
  else string),
* :func:`parse_query` — ``key=value&...`` query-part parsing,
* :func:`format_query` — the canonical inverse (options sorted by key).

Specs stay plain strings end to end, so sweep cells remain picklable
across the process pool and JSON-safe for the on-disk result cache.
"""

from __future__ import annotations

import difflib
import re
from typing import Any, Iterable, Mapping

#: Registered names must be addressable inside spec strings and cache keys.
NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")

_TRUE_WORDS = frozenset({"true", "yes", "on"})
_FALSE_WORDS = frozenset({"false", "no", "off"})


def coerce_option_value(text: str) -> Any:
    """Parse an option value: bool words, then int, then float, else str."""
    lowered = text.lower()
    if lowered in _TRUE_WORDS:
        return True
    if lowered in _FALSE_WORDS:
        return False
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    return text


def parse_query(query: str, *, spec: str) -> dict[str, Any]:
    """Parse the ``key=value&...`` part of *spec* into coerced options."""
    options: dict[str, Any] = {}
    for part in query.split("&"):
        if not part:
            continue
        key, eq, value = part.partition("=")
        key = key.strip()
        if not eq or not key:
            raise ValueError(
                f"bad option {part!r} in spec {spec!r} (want key=value)"
            )
        options[key] = coerce_option_value(value.strip())
    return options


def suggest_key(key: str, valid: Iterable[str]) -> str:
    """A ``" (did you mean 'x'?)"`` hint when *key* is close to a valid key.

    Every registry grammar (machine, compiler, physics, faults) appends
    this to its unknown-option error so a typo names its nearest valid
    spelling; returns ``""`` when nothing is close enough to suggest.
    """
    matches = difflib.get_close_matches(key, list(valid), n=1, cutoff=0.6)
    return f" (did you mean {matches[0]!r}?)" if matches else ""


def format_option_value(value: Any) -> str:
    """Render one option value exactly as the parser would re-read it."""
    return str(value).lower() if isinstance(value, bool) else str(value)


def format_query(name: str, options: Mapping[str, Any] | None = None) -> str:
    """Canonical ``name?key=value&...`` form (options sorted by key)."""
    if not options:
        return name
    parts = [
        f"{key}={format_option_value(options[key])}" for key in sorted(options)
    ]
    return f"{name}?{'&'.join(parts)}"
