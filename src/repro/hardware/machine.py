"""Machine base class: a set of zones plus a shuttle topology.

Concrete machines — :class:`~repro.hardware.eml.EMLQCCDMachine` and
:class:`~repro.hardware.grid.QCCDGridMachine` — provide the zone list and an
adjacency relation, and :meth:`Machine.from_architecture` builds one
directly from a declarative
:class:`~repro.hardware.topology.ArchitectureSpec` (no subclass needed).
Everything else (paths, distances, capacity totals, lowering back to an
architecture) is shared here.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from .zones import Zone, ZoneKind

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..faults.model import FaultModel
    from .topology import ArchitectureSpec


class MachineError(ValueError):
    """Raised for invalid machine configurations or unreachable routes."""


class Machine:
    """A collection of zones with an undirected shuttle adjacency."""

    #: Registry bookkeeping: which topology builder produced this machine
    #: (``None`` for hand-built instances, reported as kind ``"custom"``).
    _spec_kind: str | None = None
    _spec_options: dict[str, Any] | None = None

    #: Fault overlay (``None`` = pristine hardware).  The zone table and
    #: ``_adjacency`` always describe the *pristine* machine; faults are
    #: applied by consumers through :meth:`live_adjacency` and the
    #: fault-aware topology maps.
    fault_model: "FaultModel | None" = None

    def __init__(self, zones: list[Zone], adjacency: dict[int, set[int]]) -> None:
        if not zones:
            raise MachineError("a machine needs at least one zone")
        ids = [zone.zone_id for zone in zones]
        if ids != list(range(len(zones))):
            raise MachineError("zone ids must be dense and ordered from 0")
        self._zones = tuple(zones)
        self._adjacency = {
            zone.zone_id: frozenset(adjacency.get(zone.zone_id, ()))
            for zone in zones
        }
        for zone_id, neighbours in self._adjacency.items():
            for other in neighbours:
                if zone_id not in self._adjacency[other]:
                    raise MachineError(
                        f"adjacency must be symmetric: {zone_id} -> {other}"
                    )

    # ------------------------------------------------------------------
    # Declarative architecture round trip
    # ------------------------------------------------------------------

    @classmethod
    def from_architecture(cls, arch: "ArchitectureSpec") -> "Machine":
        """Lower a declarative architecture into a runnable machine.

        Any topology expressible as a zone table plus adjacency edges
        builds through here — new shapes need a builder function, not a
        ``Machine`` subclass.  Always builds a plain :class:`Machine`
        (subclasses have their own constructors and rebuild through the
        registry instead).  An architecture option ``module_limit``
        becomes the machine's ``module_qubit_limit`` (the per-module ion
        budget placement respects).
        """
        zones = [
            Zone(zone_id, row.module_id, row.kind, row.capacity)
            for zone_id, row in enumerate(arch.zones)
        ]
        machine = Machine(zones, arch.adjacency())
        machine._spec_kind = arch.kind
        machine._spec_options = arch.options_dict()
        limit = machine._spec_options.get("module_limit")
        if limit is not None:
            machine.module_qubit_limit = limit
        if arch.faults is not None:
            machine.attach_fault_model(arch.faults)
        return machine

    def architecture(self) -> "ArchitectureSpec":
        """Lower this machine to its declarative architecture.

        The inverse of :meth:`from_architecture`; machines built outside
        the topology registry lower with kind ``"custom"`` and no
        options, which still round-trips through ``to_dict``/``from_dict``.
        """
        from .topology import ArchitectureSpec, ZoneSpec

        edges = {
            (min(zone_id, other), max(zone_id, other))
            for zone_id, neighbours in self._adjacency.items()
            for other in neighbours
        }
        return ArchitectureSpec(
            kind=self._spec_kind or "custom",
            zones=tuple(
                ZoneSpec(zone.module_id, zone.kind, zone.capacity)
                for zone in self._zones
            ),
            edges=tuple(sorted(edges)),
            options=tuple(sorted((self._spec_options or {}).items())),
            faults=self.fault_model,
        )

    @property
    def spec(self) -> str | None:
        """Canonical machine-spec string, or ``None`` off the registry.

        Lossless, and verified to be: the recorded options are rebuilt
        through the registered builder and must reproduce this machine's
        zone table and edges, so a hand-lowered architecture that merely
        borrows a registered kind name gets ``None`` instead of a spec
        naming different hardware.  Circuit-relative inputs such as plain
        ``"eml"`` pin their module count once built.
        """
        memo = getattr(self, "_spec_memo", None)
        if memo is None:
            memo = (self._compute_spec(),)
            self._spec_memo = memo
        return memo[0]

    def _compute_spec(self) -> str | None:
        if self._spec_kind is None:
            return None
        from .topology import default_machine_registry

        registry = default_machine_registry()
        if self._spec_kind not in registry:
            return None
        entry = registry.entry(self._spec_kind)
        try:
            options = entry.validate_options(self._spec_options or {})
            rebuilt = entry.build(options)
        except (ValueError, TypeError):
            return None
        mine = self.architecture()
        theirs = rebuilt.architecture()
        if mine.zones != theirs.zones or mine.edges != theirs.edges:
            return None
        spec = entry.format_spec(options)
        if self.fault_model is not None:
            from .topology import _append_fault_fragment

            spec = _append_fault_fragment(spec, self.fault_model.to_options())
        return spec

    def to_dict(self) -> dict:
        """JSON-safe architecture payload (see :mod:`repro.hardware.serialization`)."""
        return self.architecture().to_dict()

    @classmethod
    def from_dict(cls, payload: dict) -> "Machine":
        """Rebuild a machine from :meth:`to_dict` output."""
        from .serialization import machine_from_dict

        return machine_from_dict(payload)

    def describe(self) -> str:
        """Human-readable one-line summary (subclasses specialise)."""
        return self.architecture().describe()

    # ------------------------------------------------------------------
    # Fault overlay
    # ------------------------------------------------------------------

    def attach_fault_model(self, model: "FaultModel") -> None:
        """Overlay *model* on this machine (validated against it).

        The zone table and pristine adjacency are untouched — lowering to
        an :class:`~repro.hardware.topology.ArchitectureSpec` keeps
        describing the hardware as built, with the faults riding along as
        an annotation.  Attaching invalidates the memoised spec string and
        topology maps, so routing and cache keys see the faulted view.
        """
        from ..faults.model import FaultModel

        if not isinstance(model, FaultModel):
            raise TypeError(
                f"expected a FaultModel, got {type(model).__name__}"
            )
        if model.is_empty:
            return
        if self.fault_model is not None:
            raise MachineError(
                "machine already has a fault model attached; merge the "
                "models into one FaultModel before attaching"
            )
        model.validate_for(self)
        self.fault_model = model
        self.__dict__.pop("_spec_memo", None)
        self.__dict__.pop("_topology_maps", None)

    def live_adjacency(self) -> dict[int, frozenset[int]]:
        """Shuttle adjacency with this machine's faults applied.

        Dead zones lose every incident edge (and map to an empty set);
        severed edges disappear from both endpoints.  Without faults this
        is exactly ``_adjacency``.
        """
        model = self.fault_model
        if model is None:
            return dict(self._adjacency)
        dead = set(model.dead_zones)
        return {
            zone_id: (
                frozenset()
                if zone_id in dead
                else frozenset(
                    other
                    for other in neighbours
                    if other not in dead
                    and not model.severs_edge(zone_id, other)
                )
            )
            for zone_id, neighbours in self._adjacency.items()
        }

    # ------------------------------------------------------------------
    # Zone access
    # ------------------------------------------------------------------

    @property
    def zones(self) -> tuple[Zone, ...]:
        return self._zones

    @property
    def num_zones(self) -> int:
        return len(self._zones)

    def zone(self, zone_id: int) -> Zone:
        return self._zones[zone_id]

    def zones_of_kind(self, kind: ZoneKind) -> list[Zone]:
        return [zone for zone in self._zones if zone.kind is kind]

    def zones_in_module(self, module_id: int) -> list[Zone]:
        return [zone for zone in self._zones if zone.module_id == module_id]

    @property
    def total_capacity(self) -> int:
        return sum(zone.capacity for zone in self._zones)

    @property
    def num_modules(self) -> int:
        return 1 + max(zone.module_id for zone in self._zones)

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------

    def neighbours(self, zone_id: int) -> frozenset[int]:
        return self._adjacency[zone_id]

    def topology_maps(self):
        """Precomputed :class:`~repro.hardware.distances.TopologyMaps`.

        Built once per topology (cached by canonical machine spec) and
        memoised on the instance; the scheduling hot path reads every
        distance, path and per-module zone grouping from here.
        """
        from .distances import topology_maps

        return topology_maps(self)

    def shuttle_path(self, source: int, destination: int) -> tuple[int, ...]:
        """Shortest shuttle path as a zone-id sequence (inclusive of both
        endpoints).  Raises :class:`MachineError` when no path exists (e.g.
        across EML modules, which are fiber-linked only).  Served from the
        precomputed all-pairs table of :meth:`topology_maps`."""
        path = self.topology_maps().paths.get((source, destination))
        if path is None:
            # Distinguish bad zone ids (IndexError, as before) from
            # legitimately disconnected pairs.
            self.zone(source)
            self.zone(destination)
            raise MachineError(
                f"no shuttle path from zone {source} to zone {destination}"
            )
        return path

    def hop_distance(self, source: int, destination: int) -> int:
        """Number of shuttle hops between two zones (0 when identical)."""
        distance = self.topology_maps().distances.get((source, destination))
        if distance is None:
            self.zone(source)
            self.zone(destination)
            raise MachineError(
                f"no shuttle path from zone {source} to zone {destination}"
            )
        return distance

    def same_module(self, zone_a: int, zone_b: int) -> bool:
        return self.zone(zone_a).module_id == self.zone(zone_b).module_id
