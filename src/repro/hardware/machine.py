"""Machine base class: a set of zones plus a shuttle topology.

Concrete machines — :class:`~repro.hardware.eml.EMLQCCDMachine` and
:class:`~repro.hardware.grid.QCCDGridMachine` — provide the zone list and an
adjacency relation.  Everything else (paths, distances, capacity totals) is
shared here.
"""

from __future__ import annotations

from collections import deque

from .zones import Zone, ZoneKind


class MachineError(ValueError):
    """Raised for invalid machine configurations or unreachable routes."""


class Machine:
    """A collection of zones with an undirected shuttle adjacency."""

    def __init__(self, zones: list[Zone], adjacency: dict[int, set[int]]) -> None:
        if not zones:
            raise MachineError("a machine needs at least one zone")
        ids = [zone.zone_id for zone in zones]
        if ids != list(range(len(zones))):
            raise MachineError("zone ids must be dense and ordered from 0")
        self._zones = tuple(zones)
        self._adjacency = {
            zone.zone_id: frozenset(adjacency.get(zone.zone_id, ()))
            for zone in zones
        }
        for zone_id, neighbours in self._adjacency.items():
            for other in neighbours:
                if zone_id not in self._adjacency[other]:
                    raise MachineError(
                        f"adjacency must be symmetric: {zone_id} -> {other}"
                    )
        self._paths: dict[tuple[int, int], tuple[int, ...]] = {}

    # ------------------------------------------------------------------
    # Zone access
    # ------------------------------------------------------------------

    @property
    def zones(self) -> tuple[Zone, ...]:
        return self._zones

    @property
    def num_zones(self) -> int:
        return len(self._zones)

    def zone(self, zone_id: int) -> Zone:
        return self._zones[zone_id]

    def zones_of_kind(self, kind: ZoneKind) -> list[Zone]:
        return [zone for zone in self._zones if zone.kind is kind]

    def zones_in_module(self, module_id: int) -> list[Zone]:
        return [zone for zone in self._zones if zone.module_id == module_id]

    @property
    def total_capacity(self) -> int:
        return sum(zone.capacity for zone in self._zones)

    @property
    def num_modules(self) -> int:
        return 1 + max(zone.module_id for zone in self._zones)

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------

    def neighbours(self, zone_id: int) -> frozenset[int]:
        return self._adjacency[zone_id]

    def shuttle_path(self, source: int, destination: int) -> tuple[int, ...]:
        """Shortest shuttle path as a zone-id sequence (inclusive of both
        endpoints).  Raises :class:`MachineError` when no path exists (e.g.
        across EML modules, which are fiber-linked only)."""
        if source == destination:
            return (source,)
        key = (source, destination)
        cached = self._paths.get(key)
        if cached is not None:
            return cached
        parents: dict[int, int] = {source: source}
        queue = deque([source])
        while queue:
            current = queue.popleft()
            if current == destination:
                break
            for neighbour in self._adjacency[current]:
                if neighbour not in parents:
                    parents[neighbour] = current
                    queue.append(neighbour)
        if destination not in parents:
            raise MachineError(
                f"no shuttle path from zone {source} to zone {destination}"
            )
        path = [destination]
        while path[-1] != source:
            path.append(parents[path[-1]])
        result = tuple(reversed(path))
        self._paths[key] = result
        return result

    def hop_distance(self, source: int, destination: int) -> int:
        """Number of shuttle hops between two zones (0 when identical)."""
        return len(self.shuttle_path(source, destination)) - 1

    def same_module(self, zone_a: int, zone_b: int) -> bool:
        return self.zone(zone_a).module_id == self.zone(zone_b).module_id
