"""Hardware models: zones, EML-QCCD machines and baseline QCCD grids."""

from .eml import DEFAULT_MODULE_QUBIT_LIMIT, EMLQCCDMachine, ModuleLayout
from .grid import PAPER_GRIDS, QCCDGridMachine, paper_grid
from .machine import Machine, MachineError
from .serialization import (
    load_machine,
    machine_from_dict,
    machine_to_dict,
    save_machine,
)
from .specs import machine_from_spec
from .zones import Zone, ZoneKind

__all__ = [
    "DEFAULT_MODULE_QUBIT_LIMIT",
    "EMLQCCDMachine",
    "Machine",
    "MachineError",
    "ModuleLayout",
    "PAPER_GRIDS",
    "QCCDGridMachine",
    "Zone",
    "ZoneKind",
    "load_machine",
    "machine_from_dict",
    "machine_from_spec",
    "machine_to_dict",
    "paper_grid",
    "save_machine",
]
