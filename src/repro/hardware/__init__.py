"""Hardware models: zones, machines, and the declarative topology registry.

Machines resolve from *spec strings* through one
:class:`~repro.hardware.topology.MachineRegistry` — ``grid:3x4:16``,
``eml:16:2``, ``ring:8:16``, ``star:1+6:16``, ``chain:6:16``,
``eml?modules=4&optical=2`` or ``file:path.json`` — and every machine
lowers to a declarative :class:`~repro.hardware.topology.ArchitectureSpec`
for lossless (de)serialization.  Register new shapes with
:func:`~repro.hardware.topology.register_machine`; no ``Machine``
subclass needed.
"""

from .distances import TopologyMaps, topology_cache_key, topology_maps
from .eml import DEFAULT_MODULE_QUBIT_LIMIT, EMLQCCDMachine, ModuleLayout
from .grid import PAPER_GRIDS, QCCDGridMachine, paper_grid
from .machine import Machine, MachineError
from .serialization import (
    load_machine,
    machine_from_dict,
    machine_to_dict,
    save_machine,
)
from .specs import machine_from_spec
from .topology import (
    ArchitectureSpec,
    MachineEntry,
    MachineRegistry,
    ZoneSpec,
    available_machines,
    canonical_machine_spec,
    default_machine_registry,
    machine_families,
    parse_machine_spec,
    register_machine,
    render_machine,
    resolve_machine,
)
from .zones import Zone, ZoneKind

__all__ = [
    "ArchitectureSpec",
    "DEFAULT_MODULE_QUBIT_LIMIT",
    "EMLQCCDMachine",
    "Machine",
    "MachineEntry",
    "MachineError",
    "MachineRegistry",
    "ModuleLayout",
    "PAPER_GRIDS",
    "QCCDGridMachine",
    "TopologyMaps",
    "Zone",
    "ZoneKind",
    "ZoneSpec",
    "available_machines",
    "canonical_machine_spec",
    "default_machine_registry",
    "load_machine",
    "machine_families",
    "machine_from_dict",
    "machine_from_spec",
    "machine_to_dict",
    "parse_machine_spec",
    "paper_grid",
    "register_machine",
    "render_machine",
    "resolve_machine",
    "save_machine",
    "topology_cache_key",
    "topology_maps",
]
