"""Zones: the functional trap regions of an (EML-)QCCD device.

The paper's multi-level analogy (§3): storage zones are level 0 (external
storage), operation zones level 1 (main memory), optical zones level 2 (CPU).
Gates may execute only in operation/optical zones; fiber-mediated gates only
between optical zones of different modules.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class ZoneKind(enum.Enum):
    """Functional role of a trap zone."""

    STORAGE = "storage"
    OPERATION = "operation"
    OPTICAL = "optical"

    @property
    def level(self) -> int:
        """Memory-hierarchy level (paper §3): storage 0, operation 1, optical 2."""
        return _LEVELS[self]

    @property
    def allows_gates(self) -> bool:
        """Whether local two-qubit gates may execute in this zone kind."""
        return self is not ZoneKind.STORAGE

    @property
    def allows_fiber(self) -> bool:
        """Whether the zone has an ion-photon interface."""
        return self is ZoneKind.OPTICAL


_LEVELS = {
    ZoneKind.STORAGE: 0,
    ZoneKind.OPERATION: 1,
    ZoneKind.OPTICAL: 2,
}


@dataclass(frozen=True, slots=True)
class Zone:
    """Static description of one trap zone.

    Attributes:
        zone_id: machine-global identifier.
        module_id: owning QCCD module (grid machines use module 0).
        kind: functional role.
        capacity: maximum ions the trap confines at once.
    """

    zone_id: int
    module_id: int
    kind: ZoneKind
    capacity: int

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ValueError(
                f"zone {self.zone_id} capacity must be >= 1, got {self.capacity}"
            )
        if self.zone_id < 0 or self.module_id < 0:
            raise ValueError("zone and module ids must be non-negative")

    @property
    def level(self) -> int:
        return self.kind.level

    @property
    def allows_gates(self) -> bool:
        return self.kind.allows_gates

    @property
    def allows_fiber(self) -> bool:
        return self.kind.allows_fiber

    def __str__(self) -> str:
        return f"z{self.zone_id}({self.kind.value}@m{self.module_id})"
