"""Machine (de)serialization: architectures as plain dicts / JSON files.

Every machine — the registered families *and* hand-built custom
topologies — lowers to a declarative
:class:`~repro.hardware.topology.ArchitectureSpec` (zone table + shuttle
edges + the builder options that produced it), so sweep configurations can
live in files, ``file:path.json`` machine specs resolve from disk, and
experiment results can record exactly which hardware produced them.

The round trip is lossless and type-preserving: payloads whose ``kind``
names a registered topology rebuild through that builder (an ``eml``
payload comes back as an :class:`~repro.hardware.eml.EMLQCCDMachine`),
and the rebuilt zone table is checked against the payload so corrupt or
hand-edited files fail loudly instead of silently drifting.
"""

from __future__ import annotations

import json

from .machine import Machine
from .topology import default_machine_registry


def machine_to_dict(machine: Machine) -> dict:
    """Describe a machine as a JSON-safe architecture payload."""
    return machine.architecture().to_dict()


def machine_from_dict(payload: dict) -> Machine:
    """Rebuild a machine from :func:`machine_to_dict` output.

    Accepts everything a ``file:`` machine spec does: full architecture
    payloads (registered kinds rebuild through their topology builder and
    are checked against the declared zone table; unknown or ``custom``
    kinds lower generically), minimal ``{"kind", "options"}`` payloads,
    and the pre-1.2 serialization format.
    """
    return default_machine_registry().from_payload(payload)


def save_machine(machine: Machine, path: str) -> None:
    """Write a machine description to a JSON file (``file:`` spec target)."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(machine_to_dict(machine), handle, indent=2)
        handle.write("\n")


def load_machine(path: str) -> Machine:
    """Read a machine description from a JSON file."""
    with open(path, encoding="utf-8") as handle:
        return machine_from_dict(json.load(handle))
