"""Machine (de)serialization: experiment configs as plain dicts / JSON.

Round-trips both machine families through JSON-safe dictionaries so sweep
configurations can live in files and experiment results can record exactly
which hardware produced them.
"""

from __future__ import annotations

import json

from .eml import EMLQCCDMachine, ModuleLayout
from .grid import QCCDGridMachine
from .machine import Machine, MachineError


def machine_to_dict(machine: Machine) -> dict:
    """Describe a machine as a JSON-safe dict."""
    if isinstance(machine, QCCDGridMachine):
        return {
            "kind": "grid",
            "rows": machine.rows,
            "columns": machine.columns,
            "trap_capacity": machine.trap_capacity,
        }
    if isinstance(machine, EMLQCCDMachine):
        return {
            "kind": "eml",
            "num_modules": machine.num_modules,
            "trap_capacity": machine.trap_capacity,
            "module_qubit_limit": machine.module_qubit_limit,
            "layout": {
                "num_storage": machine.layout.num_storage,
                "num_operation": machine.layout.num_operation,
                "num_optical": machine.layout.num_optical,
            },
        }
    raise MachineError(
        f"cannot serialise machine type {type(machine).__name__}"
    )


def machine_from_dict(payload: dict) -> Machine:
    """Rebuild a machine from :func:`machine_to_dict` output."""
    kind = payload.get("kind")
    if kind == "grid":
        return QCCDGridMachine(
            rows=payload["rows"],
            columns=payload["columns"],
            trap_capacity=payload["trap_capacity"],
        )
    if kind == "eml":
        layout_payload = payload.get("layout", {})
        layout = ModuleLayout(
            num_storage=layout_payload.get("num_storage", 2),
            num_operation=layout_payload.get("num_operation", 1),
            num_optical=layout_payload.get("num_optical", 1),
        )
        return EMLQCCDMachine(
            num_modules=payload["num_modules"],
            trap_capacity=payload["trap_capacity"],
            layout=layout,
            module_qubit_limit=payload.get("module_qubit_limit", 32),
        )
    raise MachineError(f"unknown machine kind {kind!r}")


def save_machine(machine: Machine, path: str) -> None:
    """Write a machine description to a JSON file."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(machine_to_dict(machine), handle, indent=2)


def load_machine(path: str) -> Machine:
    """Read a machine description from a JSON file."""
    with open(path, encoding="utf-8") as handle:
        return machine_from_dict(json.load(handle))
