"""EML-QCCD machine: fiber-linked QCCD modules with functional zones.

Each module is the paper's refined QCCD (Fig 2b): two storage zones
(level 0), one operation zone (level 1) and one optical zone (level 2) —
a 2x2 trap grid — holding at most 32 qubits.  Zones inside a module are
mutually adjacent for shuttling; *no* shuttle crosses modules.  Optical zones
of different modules are connected through the entanglement module (fiber),
enabling remote two-qubit gates and remote logical SWAPs.

The builder follows §4 'Architecture Setting': trap capacity 16 by default
and one module added per 32 qubits of application size.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .machine import Machine, MachineError
from .zones import Zone, ZoneKind

#: Paper constraint: at most 32 qubits per QCCD module.
DEFAULT_MODULE_QUBIT_LIMIT = 32


@dataclass(frozen=True)
class ModuleLayout:
    """Zone composition of one QCCD module."""

    num_storage: int = 2
    num_operation: int = 1
    num_optical: int = 1

    def __post_init__(self) -> None:
        if self.num_storage < 1:
            raise ValueError("a module needs at least one storage zone")
        if self.num_operation < 1:
            raise ValueError("a module needs at least one operation zone")
        if self.num_optical < 1:
            raise ValueError("a module needs at least one optical zone")

    @property
    def zones_per_module(self) -> int:
        return self.num_storage + self.num_operation + self.num_optical


class EMLQCCDMachine(Machine):
    """Entanglement-module-linked QCCD machine."""

    def __init__(
        self,
        num_modules: int,
        trap_capacity: int = 16,
        layout: ModuleLayout | None = None,
        module_qubit_limit: int = DEFAULT_MODULE_QUBIT_LIMIT,
    ) -> None:
        if num_modules < 1:
            raise MachineError(f"need at least one module, got {num_modules}")
        if trap_capacity < 2:
            raise MachineError(
                f"trap capacity must be >= 2 for two-qubit gates, got {trap_capacity}"
            )
        self.layout = layout or ModuleLayout()
        self.trap_capacity = trap_capacity
        self.module_qubit_limit = module_qubit_limit

        zones: list[Zone] = []
        adjacency: dict[int, set[int]] = {}
        for module_id in range(num_modules):
            kinds = (
                [ZoneKind.OPTICAL] * self.layout.num_optical
                + [ZoneKind.OPERATION] * self.layout.num_operation
                + [ZoneKind.STORAGE] * self.layout.num_storage
            )
            module_zone_ids = []
            for kind in kinds:
                zone_id = len(zones)
                zones.append(Zone(zone_id, module_id, kind, trap_capacity))
                module_zone_ids.append(zone_id)
            # Zones inside a module are mutually adjacent: the module is a
            # small trap cluster where any zone pair is one shuttle apart.
            for a in module_zone_ids:
                adjacency.setdefault(a, set()).update(
                    b for b in module_zone_ids if b != a
                )
        super().__init__(zones, adjacency)
        self._spec_kind = "eml"
        self._spec_options = {
            "modules": num_modules,
            "capacity": trap_capacity,
            "optical": self.layout.num_optical,
            "operation": self.layout.num_operation,
            "storage": self.layout.num_storage,
            "module_limit": module_qubit_limit,
        }

    # ------------------------------------------------------------------
    # Builders
    # ------------------------------------------------------------------

    @classmethod
    def for_circuit_size(
        cls,
        num_qubits: int,
        trap_capacity: int = 16,
        layout: ModuleLayout | None = None,
        module_qubit_limit: int = DEFAULT_MODULE_QUBIT_LIMIT,
    ) -> "EMLQCCDMachine":
        """Size the machine to an application (§4): one module per 32 qubits.

        The module count also respects total trap capacity, so shrinking the
        trap capacity below 32/zones automatically adds modules.
        """
        if num_qubits < 1:
            raise MachineError(f"num_qubits must be positive, got {num_qubits}")
        layout = layout or ModuleLayout()
        by_limit = math.ceil(num_qubits / module_qubit_limit)
        per_module_capacity = layout.zones_per_module * trap_capacity
        usable = min(module_qubit_limit, per_module_capacity)
        by_capacity = math.ceil(num_qubits / usable)
        num_modules = max(by_limit, by_capacity, 1)
        return cls(num_modules, trap_capacity, layout, module_qubit_limit)

    # ------------------------------------------------------------------
    # EML-specific queries
    # ------------------------------------------------------------------

    def optical_zones(self, module_id: int) -> list[Zone]:
        return [
            zone
            for zone in self.zones_in_module(module_id)
            if zone.kind is ZoneKind.OPTICAL
        ]

    def operation_zones(self, module_id: int) -> list[Zone]:
        return [
            zone
            for zone in self.zones_in_module(module_id)
            if zone.kind is ZoneKind.OPERATION
        ]

    def storage_zones(self, module_id: int) -> list[Zone]:
        return [
            zone
            for zone in self.zones_in_module(module_id)
            if zone.kind is ZoneKind.STORAGE
        ]

    def fiber_connected(self, module_a: int, module_b: int) -> bool:
        """All module pairs entangle through the central entanglement module."""
        return module_a != module_b

    def module_capacity(self, module_id: int) -> int:
        """Usable qubit head-room of a module (min of trap space and the
        32-qubit module limit)."""
        trap_space = sum(z.capacity for z in self.zones_in_module(module_id))
        return min(trap_space, self.module_qubit_limit)

    def describe(self) -> str:
        """Human-readable one-line summary."""
        return (
            f"EML-QCCD: {self.num_modules} module(s) x "
            f"[{self.layout.num_optical} optical + "
            f"{self.layout.num_operation} operation + "
            f"{self.layout.num_storage} storage] zones, "
            f"trap capacity {self.trap_capacity}, "
            f"module limit {self.module_qubit_limit} qubits"
        )
