"""Monolithic QCCD grid machine (the baselines' hardware model).

The comparison architectures of §4 are classic QCCD grids — Grid 2x2 and
2x3 for small scale, 3x4 and 4x5 for medium/large — where every trap is
full-function (gates may execute in any trap, matching 'traditional QCCD
compilers allow two-qubit gates to be applied in arbitrary zones', §2.3) and
ions shuttle between 4-neighbour adjacent traps through junctions.
"""

from __future__ import annotations

from .machine import Machine, MachineError
from .zones import Zone, ZoneKind


class QCCDGridMachine(Machine):
    """R x C grid of full-function traps with 4-neighbour shuttling."""

    def __init__(self, rows: int, columns: int, trap_capacity: int) -> None:
        if rows < 1 or columns < 1:
            raise MachineError(f"grid must be at least 1x1, got {rows}x{columns}")
        if trap_capacity < 2:
            raise MachineError(
                f"trap capacity must be >= 2 for two-qubit gates, got {trap_capacity}"
            )
        self.rows = rows
        self.columns = columns
        self.trap_capacity = trap_capacity

        zones = [
            Zone(zone_id, 0, ZoneKind.OPERATION, trap_capacity)
            for zone_id in range(rows * columns)
        ]
        adjacency: dict[int, set[int]] = {zone.zone_id: set() for zone in zones}
        for row in range(rows):
            for col in range(columns):
                zone_id = row * columns + col
                if col + 1 < columns:
                    right = zone_id + 1
                    adjacency[zone_id].add(right)
                    adjacency[right].add(zone_id)
                if row + 1 < rows:
                    down = zone_id + columns
                    adjacency[zone_id].add(down)
                    adjacency[down].add(zone_id)
        super().__init__(zones, adjacency)
        self._spec_kind = "grid"
        self._spec_options = {
            "rows": rows,
            "cols": columns,
            "capacity": trap_capacity,
        }

    def position(self, zone_id: int) -> tuple[int, int]:
        """Grid coordinates (row, column) of a trap."""
        return divmod(zone_id, self.columns)

    def manhattan_distance(self, zone_a: int, zone_b: int) -> int:
        row_a, col_a = self.position(zone_a)
        row_b, col_b = self.position(zone_b)
        return abs(row_a - row_b) + abs(col_a - col_b)

    def describe(self) -> str:
        return (
            f"QCCD grid {self.rows}x{self.columns}, "
            f"trap capacity {self.trap_capacity}"
        )


#: §4's architecture settings, keyed by application scale.
PAPER_GRIDS = {
    "small-2x2": dict(rows=2, columns=2, trap_capacity=12),
    "small-2x3": dict(rows=2, columns=3, trap_capacity=8),
    "medium-3x4": dict(rows=3, columns=4, trap_capacity=16),
    "large-4x5": dict(rows=4, columns=5, trap_capacity=16),
}


def paper_grid(key: str) -> QCCDGridMachine:
    """Build one of the paper's named grid configurations."""
    try:
        settings = PAPER_GRIDS[key]
    except KeyError:
        raise MachineError(
            f"unknown grid {key!r}; known: {sorted(PAPER_GRIDS)}"
        ) from None
    return QCCDGridMachine(**settings)
