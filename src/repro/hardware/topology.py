"""Declarative machine registry and topology API.

The hardware mirror of the compiler registry (:mod:`repro.pipeline.registry`):
one :class:`MachineRegistry` holds every buildable topology, addressed by
*machine spec strings*, and every topology lowers to one declarative
:class:`ArchitectureSpec` — a zone table plus undirected shuttle-adjacency
edges — that :meth:`~repro.hardware.machine.Machine.from_architecture`
turns into a runnable machine.  New shapes need only a builder function,
no :class:`~repro.hardware.machine.Machine` subclass.

Spec strings come in three forms::

    grid:4x4:12                        # positional (canonical where it fits)
    eml:16:2                           # eml[:CAP[:OPT]], sized to the circuit
    ring:8:16                          # ring of 8 full-function traps, cap 16
    star:1+6:16                        # 1 hub + 6 leaf EML modules, cap 16
    eml?modules=4&optical=2&storage=3  # query form (any registered option)
    file:examples/eml_4mod.json        # a JSON architecture file

Positional and query options compose (``eml:12?storage=3``); the registry
canonicalises every spec (defaults dropped, options sorted), so equivalent
spellings share one sweep-cache key.  Builders register with
:func:`register_machine`::

    @register_machine("ladder", family="grid", options=("rungs", "capacity"))
    def build_ladder(num_qubits=None, *, rungs=4, capacity=16):
        ...
        return ArchitectureSpec(kind="ladder", zones=..., edges=...,
                                options={"rungs": rungs, "capacity": capacity})

A builder may return either a finished machine or an
:class:`ArchitectureSpec` (lowered automatically).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator, Mapping

from ..faults.model import (
    FaultModel,
    parse_fault_options,
    split_fault_options,
)
from ..specstrings import (
    NAME_RE,
    coerce_option_value,
    format_option_value,
    format_query,
    parse_query,
    suggest_key,
)
from .eml import DEFAULT_MODULE_QUBIT_LIMIT, EMLQCCDMachine, ModuleLayout
from .grid import QCCDGridMachine
from .machine import Machine, MachineError
from .zones import ZoneKind

__all__ = [
    "ArchitectureSpec",
    "MachineEntry",
    "MachineRegistry",
    "ZoneSpec",
    "available_machines",
    "canonical_machine_spec",
    "default_machine_registry",
    "machine_families",
    "parse_machine_spec",
    "register_machine",
    "render_machine",
    "resolve_machine",
]

#: Spec prefix naming a JSON architecture file instead of a registered builder.
FILE_PREFIX = "file:"


# ---------------------------------------------------------------------------
# Declarative architecture description
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ZoneSpec:
    """One row of an architecture's zone table (zone id = row position)."""

    module_id: int
    kind: ZoneKind
    capacity: int

    def __post_init__(self) -> None:
        for name, value in (
            ("module id", self.module_id),
            ("capacity", self.capacity),
        ):
            if not isinstance(value, int) or isinstance(value, bool):
                raise MachineError(
                    f"zone {name} must be an integer, got {value!r}"
                )
        if self.module_id < 0:
            raise MachineError(
                f"zone module id must be non-negative, got {self.module_id}"
            )
        if not isinstance(self.kind, ZoneKind):
            raise MachineError(f"zone kind must be a ZoneKind, got {self.kind!r}")
        if self.capacity < 1:
            raise MachineError(
                f"zone capacity must be >= 1, got {self.capacity}"
            )


@dataclass(frozen=True)
class ArchitectureSpec:
    """Declarative machine description: zone table + adjacency edges.

    ``zones`` is ordered — a zone's id is its position.  ``edges`` are
    undirected ``(a, b)`` pairs over zone ids (normalised to ``a < b``,
    deduplicated and sorted on construction, so two specs describing the
    same topology compare equal).  ``kind``/``options`` record which
    registry builder produced the spec, making the round trip through
    :meth:`to_dict`/:meth:`from_dict` lossless; hand-built architectures
    use kind ``"custom"``.

    ``faults`` optionally annotates the architecture with a
    :class:`~repro.faults.model.FaultModel` (dead zones, severed edges,
    failed optical links, degraded entanglers).  The zone table and edge
    list always describe the *pristine* hardware — faults are an overlay,
    so a fault-free spec is byte-identical to one that never heard of
    faults (``to_dict`` emits no ``"faults"`` key when the model is
    empty).
    """

    kind: str = "custom"
    zones: tuple[ZoneSpec, ...] = ()
    edges: tuple[tuple[int, int], ...] = ()
    options: tuple[tuple[str, Any], ...] = ()
    faults: FaultModel | None = None

    def __post_init__(self) -> None:
        if self.faults is not None:
            if not isinstance(self.faults, FaultModel):
                raise MachineError(
                    f"architecture 'faults' must be a FaultModel, got "
                    f"{type(self.faults).__name__}"
                )
            if self.faults.is_empty:
                # An empty model normalises to None so pristine specs
                # compare (and serialise) identically however built.
                object.__setattr__(self, "faults", None)
        if not NAME_RE.match(self.kind):
            raise MachineError(f"invalid architecture kind {self.kind!r}")
        zones = tuple(self.zones)
        if not zones:
            raise MachineError("an architecture needs at least one zone")
        for zone in zones:
            if not isinstance(zone, ZoneSpec):
                raise MachineError(
                    f"zones must be ZoneSpec rows, got {type(zone).__name__}"
                )
        modules = {zone.module_id for zone in zones}
        if modules != set(range(len(modules))):
            raise MachineError(
                "module ids must be dense from 0, got "
                f"{sorted(modules)}"
            )
        normalised: set[tuple[int, int]] = set()
        for edge in self.edges:
            try:
                a, b = edge
            except (TypeError, ValueError):
                raise MachineError(
                    f"edges must be (a, b) zone-id pairs, got {edge!r}"
                ) from None
            if not all(
                isinstance(end, int) and not isinstance(end, bool)
                for end in (a, b)
            ):
                raise MachineError(
                    f"edge {edge!r} endpoints must be integer zone ids"
                )
            if a == b:
                raise MachineError(f"self-loop edge on zone {a}")
            if not (0 <= a < len(zones) and 0 <= b < len(zones)):
                raise MachineError(
                    f"edge {edge!r} references an unknown zone "
                    f"(zone ids run 0..{len(zones) - 1})"
                )
            normalised.add((min(a, b), max(a, b)))
        options = tuple(
            sorted(
                dict(self.options).items()
                if not isinstance(self.options, Mapping)
                else self.options.items()
            )
        )
        object.__setattr__(self, "zones", zones)
        object.__setattr__(self, "edges", tuple(sorted(normalised)))
        object.__setattr__(self, "options", options)

    # -- queries ---------------------------------------------------------

    @property
    def num_zones(self) -> int:
        return len(self.zones)

    @property
    def num_modules(self) -> int:
        return 1 + max(zone.module_id for zone in self.zones)

    @property
    def total_capacity(self) -> int:
        return sum(zone.capacity for zone in self.zones)

    def options_dict(self) -> dict[str, Any]:
        return dict(self.options)

    def adjacency(self) -> dict[int, set[int]]:
        """The edge list as the symmetric mapping ``Machine`` consumes."""
        neighbours: dict[int, set[int]] = {
            zone_id: set() for zone_id in range(len(self.zones))
        }
        for a, b in self.edges:
            neighbours[a].add(b)
            neighbours[b].add(a)
        return neighbours

    # -- serialisation ---------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-safe dict: ``{"kind", "options", "zones", "edges"}``
        (plus ``"faults"`` only when a non-empty fault model is attached,
        so pristine payloads are byte-identical to pre-fault ones)."""
        payload = {
            "kind": self.kind,
            "options": {
                key: value for key, value in self.options
            },
            "zones": [
                {
                    "zone_id": zone_id,
                    "module": zone.module_id,
                    "kind": zone.kind.value,
                    "capacity": zone.capacity,
                }
                for zone_id, zone in enumerate(self.zones)
            ],
            "edges": [list(edge) for edge in self.edges],
        }
        if self.faults is not None:
            payload["faults"] = self.faults.to_dict()
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping) -> "ArchitectureSpec":
        """Inverse of :meth:`to_dict`, with full validation.

        ``zone_id`` fields are optional; when present they must be dense
        and match each row's position, so a hand-edited file cannot
        silently reorder the zone table.
        """
        if not isinstance(payload, Mapping):
            raise MachineError(
                f"architecture payload must be a mapping, got "
                f"{type(payload).__name__}"
            )
        kind = payload.get("kind")
        if not isinstance(kind, str) or not NAME_RE.match(kind):
            raise MachineError(f"invalid architecture kind {kind!r}")
        options = payload.get("options", {})
        if not isinstance(options, Mapping):
            raise MachineError("architecture 'options' must be a mapping")
        rows = payload.get("zones")
        if not isinstance(rows, (list, tuple)) or not rows:
            raise MachineError(
                "architecture 'zones' must be a non-empty list"
            )
        zones: list[ZoneSpec] = []
        for position, row in enumerate(rows):
            if not isinstance(row, Mapping):
                raise MachineError(f"zone row {position} must be a mapping")
            zone_id = row.get("zone_id", position)
            if zone_id != position:
                raise MachineError(
                    f"zone ids must be dense and ordered from 0: row "
                    f"{position} carries zone_id {zone_id!r}"
                )
            kind_text = row.get("kind")
            try:
                zone_kind = ZoneKind(kind_text)
            except ValueError:
                valid = ", ".join(k.value for k in ZoneKind)
                raise MachineError(
                    f"unknown zone kind {kind_text!r} (want one of {valid})"
                ) from None
            # Require the structural keys outright: silently defaulting a
            # misspelled 'module' or 'capacity' would build a different
            # machine than the file describes.
            missing = [key for key in ("module", "capacity") if key not in row]
            if missing:
                raise MachineError(
                    f"zone row {position} needs {' and '.join(repr(k) for k in missing)}"
                )
            zones.append(
                ZoneSpec(
                    module_id=row["module"],
                    kind=zone_kind,
                    capacity=row["capacity"],
                )
            )
        edges = payload.get("edges", [])
        if not isinstance(edges, (list, tuple)):
            raise MachineError("architecture 'edges' must be a list of pairs")
        parsed_edges = []
        for edge in edges:
            if not isinstance(edge, (list, tuple)):
                raise MachineError(
                    f"edges must be [a, b] zone-id pairs, got {edge!r}"
                )
            parsed_edges.append(tuple(edge))
        faults_payload = payload.get("faults")
        faults = None
        if faults_payload is not None:
            if not isinstance(faults_payload, Mapping):
                raise MachineError("architecture 'faults' must be a mapping")
            faults = FaultModel.from_dict(faults_payload)
        return cls(
            kind=kind,
            zones=tuple(zones),
            edges=tuple(parsed_edges),
            options=tuple(sorted(options.items())),
            faults=faults,
        )

    def describe(self) -> str:
        """Human-readable one-line summary."""
        per_kind: dict[str, int] = {}
        for zone in self.zones:
            per_kind[zone.kind.value] = per_kind.get(zone.kind.value, 0) + 1
        mix = " + ".join(
            f"{per_kind[k.value]} {k.value}" for k in ZoneKind if k.value in per_kind
        )
        text = (
            f"{self.kind}: {self.num_modules} module(s), "
            f"{self.num_zones} zones ({mix}), "
            f"{len(self.edges)} shuttle edges, "
            f"total capacity {self.total_capacity}"
        )
        if self.faults is not None:
            text += f"; faults: {self.faults.describe()}"
        return text


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class MachineEntry:
    """One registered topology: builder plus the metadata the UIs need."""

    name: str
    builder: Callable[..., Any]
    summary: str = ""
    #: Hardware family compilers target ("grid": monolithic full-function
    #: traps, "eml": fiber-linked modules).  Compiler ``machine_family``
    #: metadata resolves against the set of registered families.
    family: str = "eml"
    #: Option names the builder accepts via spec strings.
    options: tuple[str, ...] = ()
    #: Default option values — dropped when formatting canonical specs.
    defaults: Mapping[str, Any] = field(default_factory=dict)
    #: Parse colon-separated positional segments into options.  ``None``
    #: uses the default codec: segments fill ``options`` in declaration
    #: order (``ladder:6`` -> first declared option = 6).
    positional: Callable[[list[str], str], dict[str, Any]] | None = None
    #: Render options as the short colon form, or None to fall back to the
    #: generic ``name?key=value`` query form.
    colon_form: Callable[[dict[str, Any]], str | None] | None = None
    #: Validate option *values* at spec-parse time (ranges, consistency) —
    #: so a bad capacity fails with a clear message before Machine.__init__.
    check: Callable[[dict[str, Any]], None] | None = None

    def validate_options(self, options: Mapping[str, Any]) -> dict[str, Any]:
        """Check option names and values; returns a plain dict."""
        options = dict(options)
        unknown = sorted(set(options) - set(self.options))
        if unknown:
            valid = ", ".join(self.options) if self.options else "none"
            from ..faults.model import FAULT_KEYS

            hint = suggest_key(unknown[0], (*self.options, *FAULT_KEYS))
            raise ValueError(
                f"unknown option(s) for machine {self.name!r}: "
                f"{', '.join(unknown)}{hint} (valid options: {valid})"
            )
        if self.check is not None:
            self.check(options)
        return options

    def canonical_options(self, options: Mapping[str, Any]) -> dict[str, Any]:
        """Drop options whose value equals the registered default."""
        return {
            key: value
            for key, value in options.items()
            if key not in self.defaults or self.defaults[key] != value
        }

    def format_spec(self, options: Mapping[str, Any]) -> str:
        """Canonical spec string for *options* (shortest registered form).

        *options* must already satisfy :meth:`validate_options` — the
        colon formatters rely on required keys being present.
        """
        minimal = self.canonical_options(options)
        if self.colon_form is not None:
            short = self.colon_form(dict(minimal))
            if short is not None:
                return short
        return format_query(self.name, minimal)

    def build(
        self, options: Mapping[str, Any], num_qubits: int | None = None
    ) -> Machine:
        """Instantiate, lowering an :class:`ArchitectureSpec` result."""
        built = self.builder(num_qubits=num_qubits, **self.validate_options(options))
        if isinstance(built, ArchitectureSpec):
            built = Machine.from_architecture(built)
        if not isinstance(built, Machine):
            raise TypeError(
                f"machine builder {self.name!r} must return a Machine or an "
                f"ArchitectureSpec, got {type(built).__name__}"
            )
        return built


class MachineRegistry:
    """Name -> :class:`MachineEntry` table with spec-string resolution."""

    def __init__(self) -> None:
        self._entries: dict[str, MachineEntry] = {}

    # -- registration ----------------------------------------------------

    def register(
        self,
        name: str,
        *,
        summary: str = "",
        family: str = "eml",
        options: Iterable[str] = (),
        defaults: Mapping[str, Any] | None = None,
        positional: Callable[[list[str], str], dict[str, Any]] | None = None,
        colon_form: Callable[[dict[str, Any]], str | None] | None = None,
        check: Callable[[dict[str, Any]], None] | None = None,
    ) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
        """Decorator registering ``builder`` under ``name``.

        The builder is called as ``builder(num_qubits=..., **options)`` and
        may return a :class:`~repro.hardware.machine.Machine` or an
        :class:`ArchitectureSpec`.
        """

        def decorate(builder: Callable[..., Any]) -> Callable[..., Any]:
            self.add(
                MachineEntry(
                    name=name,
                    builder=builder,
                    summary=summary,
                    family=family,
                    options=tuple(options),
                    defaults=(
                        dict(defaults)
                        if defaults is not None
                        else _builder_defaults(builder, options)
                    ),
                    positional=positional,
                    colon_form=colon_form,
                    check=check,
                )
            )
            return builder

        return decorate

    def add(self, entry: MachineEntry) -> None:
        if not NAME_RE.match(entry.name):
            raise ValueError(
                f"invalid machine name {entry.name!r} "
                "(letters, digits, '.', '_', '-'; must not start with punctuation)"
            )
        if entry.name == "file":
            raise ValueError(
                "'file' is reserved for file:path.json machine specs"
            )
        if entry.name in self._entries:
            raise ValueError(
                f"machine {entry.name!r} is already registered; "
                "pick a different name (re-registration is not allowed)"
            )
        if not NAME_RE.match(entry.family):
            raise ValueError(f"invalid machine family {entry.family!r}")
        self._entries[entry.name] = entry

    # -- lookup ----------------------------------------------------------

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def __iter__(self) -> Iterator[MachineEntry]:
        return iter(self._entries.values())

    def __len__(self) -> int:
        return len(self._entries)

    def names(self) -> list[str]:
        return sorted(self._entries)

    def families(self) -> list[str]:
        """Every hardware family named by a registration, sorted."""
        return sorted({entry.family for entry in self._entries.values()})

    def entry(self, name: str) -> MachineEntry:
        try:
            return self._entries[name]
        except KeyError:
            raise ValueError(
                f"unknown machine {name!r} "
                f"(want one of {', '.join(self.names())}, or file:path.json)"
            ) from None

    def describe(self) -> str:
        """One ``name  summary`` line per registration, sorted by name."""
        width = max((len(name) for name in self._entries), default=0)
        return "\n".join(
            f"{name:{width}s}  {self._entries[name].summary}"
            for name in self.names()
        )

    # -- spec strings ----------------------------------------------------

    def parse(self, spec: str) -> tuple[str, dict[str, Any]]:
        """Split a machine spec into ``(name, validated options)``.

        Accepts positional colon segments, a ``?key=value`` query, or both
        (``eml:12?storage=3``); query options may not rename a positional
        one.  Fault-grammar keys (``dead_zones``/``severed_edges``/
        ``failed_links``/``entangler_eps``) are legal in the query of
        *any* registered machine: they validate through the fault grammar
        and come back in canonical string form alongside the builder
        options.  ``file:`` specs do not parse — resolve them instead.
        """
        if spec.startswith(FILE_PREFIX):
            raise ValueError(
                f"{spec!r} names an architecture file; file: specs carry no "
                "options to parse"
            )
        head, query_sep, query = spec.partition("?")
        name, _, rest = head.partition(":")
        name = name.strip()
        if not name:
            raise ValueError(f"machine spec {spec!r} has no machine name")
        entry = self.entry(name)
        options: dict[str, Any] = {}
        fault_options: dict[str, Any] = {}
        if rest:
            parts = rest.split(":")
            if entry.positional is not None:
                options.update(entry.positional(parts, spec))
            elif len(parts) > len(entry.options):
                raise ValueError(
                    f"too many positional segments in {spec!r} (machine "
                    f"{name!r} takes at most {len(entry.options)}: "
                    f"{', '.join(entry.options) or 'none'})"
                )
            else:
                # Default codec: colon segments fill the declared options
                # in registration order.
                options.update(
                    (key, coerce_option_value(part))
                    for key, part in zip(entry.options, parts)
                )
        if query_sep:
            fault_options, query_options = split_fault_options(
                parse_query(query, spec=spec)
            )
            for key, value in query_options.items():
                if key in options:
                    raise ValueError(
                        f"option {key!r} appears both positionally and in "
                        f"the query of {spec!r}"
                    )
                options[key] = value
        validated = entry.validate_options(options)
        model = parse_fault_options(fault_options)
        if model is not None:
            validated.update(model.to_options())
        return name, validated

    def canonical(self, spec: str) -> str:
        """Canonical string form of *spec* (validates as a side effect).

        Equivalent spellings — positional vs query, explicit defaults vs
        omitted — collapse to one string, so sweep grids and cache keys
        treat them as the same machine.  ``file:`` specs canonicalise to
        the canonical spec of the architecture they contain when that
        architecture is registry-buildable, else stay path-keyed.
        """
        if spec.startswith(FILE_PREFIX):
            path = _file_spec_path(spec)
            payload = _upgrade_legacy_payload(_read_payload(path))
            if isinstance(payload, Mapping) and "zones" not in payload:
                # Minimal form: kind + options canonicalise without a
                # build, so circuit-relative files (no modules pinned)
                # canonicalise too.
                kind = payload.get("kind")
                if isinstance(kind, str) and kind in self._entries:
                    entry = self._entries[kind]
                    fault_options, builder_options = split_fault_options(
                        payload.get("options", {})
                    )
                    model = parse_fault_options(fault_options)
                    return _append_fault_fragment(
                        entry.format_spec(
                            entry.validate_options(builder_options)
                        ),
                        model.to_options() if model is not None else {},
                    )
                # Fall through to from_payload for its error message.
            # Full form: resolve for real — the recorded options must
            # rebuild the declared zone table, so a corrupt file cannot
            # canonicalise (and cache-key) as pristine hardware.  That
            # check already ran inside from_payload, so the spec formats
            # straight from the machine's recorded options (machine.spec
            # would redo the rebuild-and-compare).
            machine = self.from_payload(payload)
            if machine._spec_kind in self._entries:
                entry = self._entries[machine._spec_kind]
                model = machine.fault_model
                return _append_fault_fragment(
                    entry.format_spec(
                        entry.validate_options(machine._spec_options or {})
                    ),
                    model.to_options() if model is not None else {},
                )
            # Unregistered/custom kinds stay path-keyed, but carry a
            # content digest so an edited file never reuses a stale sweep
            # cache key (and relative/absolute spellings agree).
            return (
                f"{FILE_PREFIX}{os.path.abspath(path)}"
                f"#sha256={_payload_digest(payload)}"
            )
        name, options = self.parse(spec)
        fault_options, builder_options = split_fault_options(options)
        return _append_fault_fragment(
            self._entries[name].format_spec(builder_options), fault_options
        )

    # -- resolution ------------------------------------------------------

    def resolve(
        self, spec: str | Machine, num_qubits: int | None = None
    ) -> Machine:
        """Turn a spec string (or ready machine) into a machine.

        ``num_qubits`` sizes circuit-relative specs (the §4 ``eml`` rule);
        fully pinned specs ignore it.
        """
        if isinstance(spec, Machine):
            return spec
        if not isinstance(spec, str):
            raise TypeError(
                f"expected a machine spec string or a Machine, got "
                f"{type(spec).__name__}"
            )
        if spec.startswith(FILE_PREFIX):
            return self.from_payload(
                _read_payload(_file_spec_path(spec)), num_qubits
            )
        name, options = self.parse(spec)
        fault_options, builder_options = split_fault_options(options)
        machine = self._entries[name].build(builder_options, num_qubits)
        model = parse_fault_options(fault_options)
        if model is not None:
            machine.attach_fault_model(model)
        return machine

    def from_architecture(self, arch: ArchitectureSpec) -> Machine:
        """Build *arch*, through its registered builder when one exists.

        A registered kind rebuilds through its builder (so e.g. an ``eml``
        architecture comes back as an :class:`EMLQCCDMachine`) and the
        result is checked against the declared zone table; unknown kinds
        lower generically.
        """
        if arch.kind in self._entries:
            if not arch.options:
                raise MachineError(
                    f"architecture of registered kind {arch.kind!r} must "
                    "record its builder 'options' (or use kind 'custom' "
                    "for a hand-built zone table)"
                )
            entry = self._entries[arch.kind]
            machine = entry.build(arch.options_dict())
            rebuilt = machine.architecture()
            if rebuilt.zones != arch.zones or rebuilt.edges != arch.edges:
                raise MachineError(
                    f"architecture payload of kind {arch.kind!r} does not "
                    "match what its builder produces from the recorded "
                    "options (zone table or edges differ)"
                )
            if arch.faults is not None:
                machine.attach_fault_model(arch.faults)
            return machine
        return Machine.from_architecture(arch)

    def from_payload(
        self, payload: Mapping, num_qubits: int | None = None
    ) -> Machine:
        """Build a machine from a JSON payload (dict / ``file:`` content).

        Three accepted shapes:

        * full :meth:`ArchitectureSpec.to_dict` output (``zones``/``edges``
          declared; registered kinds are checked against their builder),
        * minimal ``{"kind", "options"}`` for a kind registered *in this
          registry* (built directly — no zone table to cross-check;
          ``num_qubits`` sizes circuit-relative option sets),
        * the pre-1.2 serialization format, upgraded transparently.
        """
        payload = _upgrade_legacy_payload(payload)
        if not isinstance(payload, Mapping):
            raise MachineError(
                f"machine payload must be a JSON object, got "
                f"{type(payload).__name__}"
            )
        if "zones" in payload:
            return self.from_architecture(ArchitectureSpec.from_dict(payload))
        # Minimal form: a registered kind plus builder options.
        kind = payload.get("kind")
        if not isinstance(kind, str) or kind not in self:
            raise MachineError(
                f"a machine payload without a 'zones' table needs a "
                f"registered 'kind' (got {kind!r}; registered: "
                f"{', '.join(self.names())})"
            )
        entry = self.entry(kind)
        fault_options, builder_options = split_fault_options(
            payload.get("options", {})
        )
        machine = entry.build(builder_options, num_qubits)
        model = parse_fault_options(fault_options)
        if model is not None:
            machine.attach_fault_model(model)
        return machine


def _append_fault_fragment(base: str, fault_options: Mapping[str, Any]) -> str:
    """Append canonical fault options to an already-canonical spec."""
    if not fault_options:
        return base
    parts = [
        f"{key}={format_option_value(fault_options[key])}"
        for key in sorted(fault_options)
    ]
    separator = "&" if "?" in base else "?"
    return f"{base}{separator}{'&'.join(parts)}"


def _builder_defaults(
    builder: Callable[..., Any], options: Iterable[str]
) -> dict[str, Any]:
    """Derive canonicalisation defaults from a builder's signature.

    Registrations that do not pass ``defaults=`` still get the documented
    invariant — explicit-default spellings canonicalise away — from the
    builder's own keyword defaults.  ``None`` defaults mean "unset" (e.g.
    eml's circuit-relative ``modules``) and are skipped.
    """
    import inspect

    option_names = set(options)
    try:
        parameters = inspect.signature(builder).parameters
    except (TypeError, ValueError):  # builtins / C callables
        return {}
    return {
        name: parameter.default
        for name, parameter in parameters.items()
        if name in option_names
        and parameter.default is not inspect.Parameter.empty
        and parameter.default is not None
    }


def _file_spec_path(spec: str) -> str:
    """Extract the path of a ``file:`` spec.

    Only the self-generated canonicalisation fragment is dropped
    (``file:arch.json#sha256=...`` resolves like ``file:arch.json``);
    a ``#`` that is genuinely part of the file name stays intact.
    """
    path = spec[len(FILE_PREFIX):].strip()
    head, sep, fragment = path.rpartition("#")
    if sep and fragment.startswith("sha256="):
        path = head
    if "?" in path:
        raise ValueError(
            f"file: machine specs carry no ?options (got {spec!r}); put "
            "builder options in the JSON file's 'options' object"
        )
    return path


def _payload_digest(payload: Mapping) -> str:
    """Content digest of a machine payload (whitespace-insensitive)."""
    import hashlib
    import json

    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode()).hexdigest()[:16]


def _read_payload(path: str) -> Mapping:
    """Read a ``file:`` machine spec's JSON payload with clean errors."""
    import json

    path = path.strip()
    if not path:
        raise ValueError("file: machine spec needs a path, e.g. file:arch.json")
    try:
        with open(path, encoding="utf-8") as handle:
            payload = json.load(handle)
    except OSError as error:
        raise ValueError(f"cannot read machine file {path!r}: {error}") from None
    except json.JSONDecodeError as error:
        raise ValueError(
            f"machine file {path!r} is not valid JSON: {error}"
        ) from None
    if not isinstance(payload, Mapping):
        raise MachineError(f"machine file {path!r} must hold a JSON object")
    return payload


def _upgrade_legacy_payload(payload: Any) -> Any:
    """Convert the pre-1.2 serialization format to builder options.

    Version 1.1's ``machine_to_dict`` wrote ``{"kind": "grid", "rows",
    "columns", "trap_capacity"}`` and ``{"kind": "eml", "num_modules",
    "trap_capacity", "module_qubit_limit", "layout": {...}}``; saved sweep
    configs in that shape keep loading.
    """
    if (
        not isinstance(payload, Mapping)
        or "zones" in payload
        or "options" in payload
    ):
        return payload
    kind = payload.get("kind")
    if kind == "grid" and {"rows", "columns", "trap_capacity"} <= payload.keys():
        return {
            "kind": "grid",
            "options": {
                "rows": payload["rows"],
                "cols": payload["columns"],
                "capacity": payload["trap_capacity"],
            },
        }
    if kind == "eml" and "num_modules" in payload:
        layout = payload.get("layout") or {}
        return {
            "kind": "eml",
            "options": {
                "modules": payload["num_modules"],
                "capacity": payload.get("trap_capacity", 16),
                "optical": layout.get("num_optical", 1),
                "operation": layout.get("num_operation", 1),
                "storage": layout.get("num_storage", 2),
                "module_limit": payload.get(
                    "module_qubit_limit", DEFAULT_MODULE_QUBIT_LIMIT
                ),
            },
        }
    return payload


# ---------------------------------------------------------------------------
# Default registry + module-level helpers
# ---------------------------------------------------------------------------

#: The process-wide registry every front-end resolves through.
_DEFAULT_REGISTRY = MachineRegistry()


def default_machine_registry() -> MachineRegistry:
    """The registry the CLI, facade, sweeps and serializer share."""
    return _DEFAULT_REGISTRY


def register_machine(
    name: str,
    *,
    summary: str = "",
    family: str = "eml",
    options: Iterable[str] = (),
    defaults: Mapping[str, Any] | None = None,
    positional: Callable[[list[str], str], dict[str, Any]] | None = None,
    colon_form: Callable[[dict[str, Any]], str | None] | None = None,
    check: Callable[[dict[str, Any]], None] | None = None,
) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
    """``@register_machine("name")`` on the default registry."""
    return _DEFAULT_REGISTRY.register(
        name,
        summary=summary,
        family=family,
        options=options,
        defaults=defaults,
        positional=positional,
        colon_form=colon_form,
        check=check,
    )


def parse_machine_spec(spec: str) -> tuple[str, dict[str, Any]]:
    """Parse a machine spec through the default registry."""
    return _DEFAULT_REGISTRY.parse(spec)


def canonical_machine_spec(spec: str) -> str:
    """Canonicalise (and validate) a machine spec string."""
    return _DEFAULT_REGISTRY.canonical(spec)


def resolve_machine(spec: str | Machine, num_qubits: int | None = None) -> Machine:
    """Resolve a spec through the default registry."""
    return _DEFAULT_REGISTRY.resolve(spec, num_qubits)


def available_machines() -> list[str]:
    """Sorted names registered in the default registry."""
    return _DEFAULT_REGISTRY.names()


def machine_families() -> list[str]:
    """Hardware families named by default-registry machines."""
    return _DEFAULT_REGISTRY.families()


# ---------------------------------------------------------------------------
# Built-in topologies
# ---------------------------------------------------------------------------


def _require_int(options: Mapping[str, Any], key: str, minimum: int, why: str) -> None:
    if key not in options:
        return
    value = options[key]
    if not isinstance(value, int) or isinstance(value, bool) or value < minimum:
        raise ValueError(
            f"machine option {key!r} must be an integer >= {minimum} "
            f"({why}), got {value!r}"
        )


def _require_present(options: Mapping[str, Any], keys: Iterable[str], name: str) -> None:
    missing = [key for key in keys if key not in options]
    if missing:
        raise ValueError(
            f"machine {name!r} needs option(s) {', '.join(missing)} "
            f"(e.g. {name}?{'&'.join(f'{key}=...' for key in missing)})"
        )


def _check_capacity(options: Mapping[str, Any]) -> None:
    _require_int(options, "capacity", 2, "two-qubit gates need >= 2 ions per trap")


def _parse_grid_positional(parts: list[str], spec: str) -> dict[str, Any]:
    if len(parts) != 2 or "x" not in parts[0]:
        raise ValueError(f"grid spec must be grid:RxC:CAP, got {spec!r}")
    rows_text, _, cols_text = parts[0].partition("x")
    try:
        return {
            "rows": int(rows_text),
            "cols": int(cols_text),
            "capacity": int(parts[1]),
        }
    except ValueError:
        raise ValueError(
            f"grid spec must be grid:RxC:CAP with integers, got {spec!r}"
        ) from None


def _check_grid(options: Mapping[str, Any]) -> None:
    _require_present(options, ("rows", "cols", "capacity"), "grid")
    _require_int(options, "rows", 1, "a grid needs at least one row")
    _require_int(options, "cols", 1, "a grid needs at least one column")
    _check_capacity(options)


def _grid_colon_form(options: dict[str, Any]) -> str | None:
    return f"grid:{options['rows']}x{options['cols']}:{options['capacity']}"


@register_machine(
    "grid",
    summary="monolithic QCCD grid of full-function traps (baseline hardware)",
    family="grid",
    options=("rows", "cols", "capacity"),
    positional=_parse_grid_positional,
    colon_form=_grid_colon_form,
    check=_check_grid,
)
def build_grid(num_qubits: int | None = None, *, rows: int, cols: int, capacity: int) -> Machine:
    return QCCDGridMachine(rows, cols, capacity)


def _parse_int_segments(
    parts: list[str], spec: str, names: tuple[str, ...], usage: str
) -> dict[str, Any]:
    if len(parts) > len(names):
        raise ValueError(f"spec must be {usage}, got {spec!r}")
    try:
        return {name: int(text) for name, text in zip(names, parts)}
    except ValueError:
        raise ValueError(
            f"spec must be {usage} with integers, got {spec!r}"
        ) from None


_EML_LAYOUT_OPTIONS = ("optical", "operation", "storage")

#: Single source of the eml builder defaults — shared by the registration's
#: ``defaults=`` (canonical-spec dropping) and the colon formatter, so a
#: changed default can never make a canonical spec name a different machine.
_EML_DEFAULTS = {
    "capacity": 16,
    "optical": 1,
    "operation": 1,
    "storage": 2,
    "module_limit": DEFAULT_MODULE_QUBIT_LIMIT,
}

#: Likewise for the star builder (leaf zones follow the eml layout).
_STAR_DEFAULTS = {"hubs": 1, "hub_optical": 2, **_EML_DEFAULTS}


def _check_eml(options: Mapping[str, Any]) -> None:
    _check_capacity(options)
    _require_int(options, "modules", 1, "an EML machine needs a module")
    _require_int(options, "optical", 1, "a module needs an optical zone")
    _require_int(options, "operation", 1, "a module needs an operation zone")
    _require_int(options, "storage", 1, "a module needs a storage zone")
    _require_int(options, "module_limit", 2, "a module must hold a gate pair")


def _eml_colon_form(options: dict[str, Any]) -> str | None:
    if not set(options) <= {"capacity", "optical"}:
        return None
    if "optical" in options:
        capacity = options.get("capacity", _EML_DEFAULTS["capacity"])
        return f"eml:{capacity}:{options['optical']}"
    if "capacity" in options:
        return f"eml:{options['capacity']}"
    return "eml"


@register_machine(
    "eml",
    summary="entanglement-module-linked QCCD, sized to the circuit (§4 rule)",
    family="eml",
    options=("modules", "capacity", "module_limit") + _EML_LAYOUT_OPTIONS,
    defaults=_EML_DEFAULTS,
    positional=lambda parts, spec: _parse_int_segments(
        parts, spec, ("capacity", "optical"), "eml[:CAP[:OPTICAL]]"
    ),
    colon_form=_eml_colon_form,
    check=_check_eml,
)
def build_eml(
    num_qubits: int | None = None,
    *,
    modules: int | None = None,
    capacity: int = 16,
    optical: int = 1,
    operation: int = 1,
    storage: int = 2,
    module_limit: int = DEFAULT_MODULE_QUBIT_LIMIT,
) -> Machine:
    layout = ModuleLayout(
        num_storage=storage, num_operation=operation, num_optical=optical
    )
    if modules is not None:
        return EMLQCCDMachine(modules, capacity, layout, module_limit)
    if num_qubits is None:
        raise ValueError(
            "an 'eml' spec without modules=N sizes itself to the circuit; "
            "pass num_qubits or pin the module count (eml?modules=4)"
        )
    return EMLQCCDMachine.for_circuit_size(
        num_qubits, trap_capacity=capacity, layout=layout,
        module_qubit_limit=module_limit,
    )


def _operation_row(count: int, capacity: int) -> tuple[ZoneSpec, ...]:
    return tuple(
        ZoneSpec(module_id=0, kind=ZoneKind.OPERATION, capacity=capacity)
        for _ in range(count)
    )


def _check_ring(options: Mapping[str, Any]) -> None:
    _require_present(options, ("traps",), "ring")
    _require_int(options, "traps", 3, "a ring needs at least three traps")
    _check_capacity(options)


@register_machine(
    "ring",
    summary="cycle of full-function traps (grid family, wrap-around shuttling)",
    family="grid",
    options=("traps", "capacity"),
    positional=lambda parts, spec: _parse_int_segments(
        parts, spec, ("traps", "capacity"), "ring:TRAPS[:CAP]"
    ),
    colon_form=lambda options: (
        f"ring:{options['traps']}:{options['capacity']}"
        if "capacity" in options
        else f"ring:{options['traps']}"
    ),
    check=_check_ring,
)
def build_ring(
    num_qubits: int | None = None, *, traps: int, capacity: int = 16
) -> ArchitectureSpec:
    edges = [(i, (i + 1) % traps) for i in range(traps)]
    return ArchitectureSpec(
        kind="ring",
        zones=_operation_row(traps, capacity),
        edges=tuple(edges),
        options={"traps": traps, "capacity": capacity},
    )


def _check_chain(options: Mapping[str, Any]) -> None:
    _require_present(options, ("traps",), "chain")
    _require_int(options, "traps", 1, "a chain needs at least one trap")
    _check_capacity(options)


@register_machine(
    "chain",
    summary="linear chain of full-function traps (grid family, no wrap-around)",
    family="grid",
    options=("traps", "capacity"),
    positional=lambda parts, spec: _parse_int_segments(
        parts, spec, ("traps", "capacity"), "chain:TRAPS[:CAP]"
    ),
    colon_form=lambda options: (
        f"chain:{options['traps']}:{options['capacity']}"
        if "capacity" in options
        else f"chain:{options['traps']}"
    ),
    check=_check_chain,
)
def build_chain(
    num_qubits: int | None = None, *, traps: int, capacity: int = 16
) -> ArchitectureSpec:
    edges = [(i, i + 1) for i in range(traps - 1)]
    return ArchitectureSpec(
        kind="chain",
        zones=_operation_row(traps, capacity),
        edges=tuple(edges),
        options={"traps": traps, "capacity": capacity},
    )


def _parse_star_positional(parts: list[str], spec: str) -> dict[str, Any]:
    usage = "star:HUBS+LEAVES[:CAP]"
    if not parts or len(parts) > 2 or "+" not in parts[0]:
        raise ValueError(f"star spec must be {usage}, got {spec!r}")
    hubs_text, _, leaves_text = parts[0].partition("+")
    try:
        options: dict[str, Any] = {
            "hubs": int(hubs_text),
            "leaves": int(leaves_text),
        }
        if len(parts) == 2:
            options["capacity"] = int(parts[1])
    except ValueError:
        raise ValueError(f"star spec must be {usage} with integers, got {spec!r}") from None
    return options


def _check_star(options: Mapping[str, Any]) -> None:
    _require_present(options, ("leaves",), "star")
    _require_int(options, "hubs", 1, "a star needs a hub module")
    _require_int(options, "leaves", 1, "a star needs a leaf module")
    _require_int(options, "hub_optical", 1, "a hub needs an optical zone")
    _check_eml(options)


def _star_colon_form(options: dict[str, Any]) -> str | None:
    if not set(options) <= {"hubs", "leaves", "capacity"}:
        return None
    hubs = options.get("hubs", _STAR_DEFAULTS["hubs"])
    head = f"star:{hubs}+{options['leaves']}"
    if "capacity" in options:
        return f"{head}:{options['capacity']}"
    return head


@register_machine(
    "star",
    summary="hub-and-leaf EML: optical-rich hub modules plus standard leaves",
    family="eml",
    options=("hubs", "leaves", "capacity", "hub_optical", "module_limit")
    + _EML_LAYOUT_OPTIONS,
    defaults=_STAR_DEFAULTS,
    positional=_parse_star_positional,
    colon_form=_star_colon_form,
    check=_check_star,
)
def build_star(
    num_qubits: int | None = None,
    *,
    hubs: int = 1,
    leaves: int,
    capacity: int = 16,
    hub_optical: int = 2,
    optical: int = 1,
    operation: int = 1,
    storage: int = 2,
    module_limit: int = DEFAULT_MODULE_QUBIT_LIMIT,
) -> ArchitectureSpec:
    """Heterogeneous EML for §7-style scaling studies: *hubs* modules get
    ``hub_optical`` ion-photon interfaces (entanglement routing centres),
    the *leaves* keep the standard layout.  Intra-module shuttling is
    all-to-all, exactly as in :class:`EMLQCCDMachine` modules."""
    zones: list[ZoneSpec] = []
    edges: list[tuple[int, int]] = []
    for module_id in range(hubs + leaves):
        n_optical = hub_optical if module_id < hubs else optical
        kinds = (
            [ZoneKind.OPTICAL] * n_optical
            + [ZoneKind.OPERATION] * operation
            + [ZoneKind.STORAGE] * storage
        )
        first = len(zones)
        zones.extend(
            ZoneSpec(module_id=module_id, kind=kind, capacity=capacity)
            for kind in kinds
        )
        edges.extend(
            (a, b)
            for a in range(first, len(zones))
            for b in range(a + 1, len(zones))
        )
    return ArchitectureSpec(
        kind="star",
        zones=tuple(zones),
        edges=tuple(edges),
        options={
            "hubs": hubs,
            "leaves": leaves,
            "capacity": capacity,
            "hub_optical": hub_optical,
            "optical": optical,
            "operation": operation,
            "storage": storage,
            "module_limit": module_limit,
        },
    )


# ---------------------------------------------------------------------------
# ASCII zone maps
# ---------------------------------------------------------------------------

_KIND_GLYPHS = {
    ZoneKind.OPTICAL: "opt",
    ZoneKind.OPERATION: "op",
    ZoneKind.STORAGE: "sto",
}


def _zone_cell(zone: Any) -> str:
    return f"[z{zone.zone_id} {_KIND_GLYPHS[zone.kind]}/{zone.capacity}]"


def render_machine(machine: Machine) -> str:
    """ASCII zone map of any machine (the ``repro machine render`` view).

    Grids draw as their row/column lattice; rings and chains as a single
    shuttle line; module-linked machines one module per line plus the
    fiber legend.
    """
    arch = machine.architecture()
    spec = machine.spec
    lines = [arch.describe() if spec is None else f"{spec} — {arch.describe()}"]

    if isinstance(machine, QCCDGridMachine):
        cells = [_zone_cell(zone) for zone in machine.zones]
        width = max(len(cell) for cell in cells)
        for row in range(machine.rows):
            start = row * machine.columns
            lines.append(
                " -- ".join(
                    cell.ljust(width)
                    for cell in cells[start : start + machine.columns]
                ).rstrip()
            )
        lines.append("4-neighbour shuttling between adjacent traps")
        return "\n".join(lines)

    if arch.kind in ("ring", "chain"):
        row = " -- ".join(_zone_cell(zone) for zone in machine.zones)
        if arch.kind == "ring" and machine.num_zones > 2:
            row += " -- (z0)"
        lines.append(row)
        return "\n".join(lines)

    width = len(f"module {machine.num_modules - 1}")
    for module_id in range(machine.num_modules):
        cells = " ".join(
            _zone_cell(zone) for zone in machine.zones_in_module(module_id)
        )
        lines.append(f"{f'module {module_id}':{width}s}: {cells}")
    optical = [zone for zone in machine.zones if zone.allows_fiber]
    if machine.num_modules > 1 and optical:
        ids = ", ".join(f"z{zone.zone_id}" for zone in optical)
        lines.append(
            f"fiber: optical zones ({ids}) entangle across all module pairs"
        )
    return "\n".join(lines)
