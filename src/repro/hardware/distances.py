"""Precomputed per-machine topology maps for the scheduling hot path.

The scheduler (``core/routing.py`` / ``core/state.py``) and the executor
ask the same static questions millions of times per compile: *which zones
belong to this module?  how far apart are these two zones?  what is the
shuttle path between them?*  The seed implementation answered each query
with a fresh linear scan or BFS; :func:`topology_maps` answers them all
from one immutable :class:`TopologyMaps` built once per machine.

Caching is two-level:

* an **instance memo** (``machine.__dict__``) for repeat lookups on the
  same object, and
* a process-wide table keyed by :func:`topology_cache_key` — the
  machine's *canonical registry spec* (``"eml?modules=4"``,
  ``"ring:8:16"``...) when it has one, else a content hash of its full
  declarative architecture.  Two machines with the same canonical spec
  are the same hardware, so sweeps that rebuild a machine per cell pay
  for the maps once per topology, not once per instance.  Ring vs chain
  (or any two topologies that merely share a zone count) canonicalise to
  different specs and therefore never share a cache entry;
  ``tests/bench/test_cache.py`` asserts this for every registered
  builder.

The BFS used here reproduces the seed ``Machine.shuttle_path`` exactly —
same neighbour iteration order, same first-visit parent rule — so the
precomputed paths are byte-identical to what the seed computed per query
(the differential suite proves it end to end).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .machine import Machine
    from .zones import Zone

#: Process-wide map cache.  Bounded: pathological test suites that build
#: thousands of distinct machines must not grow it without limit.
_MAPS_BY_KEY: dict[str, "TopologyMaps"] = {}
_MAX_CACHED_TOPOLOGIES = 256


@dataclass(frozen=True)
class TopologyMaps:
    """Immutable precomputed lookup tables for one machine topology.

    Zone attributes are dense tuples indexed by zone id; module groupings
    are tuples indexed by module id; distances and shortest paths cover
    every *reachable* ordered zone pair (EML modules are fiber-linked
    only, so cross-module pairs are absent by design).
    """

    cache_key: str
    #: zone id -> owning module id.
    zone_module: tuple[int, ...]
    #: zone id -> memory-hierarchy level (storage 0 / operation 1 / optical 2).
    zone_level: tuple[int, ...]
    #: zone id -> trap capacity.
    zone_capacity: tuple[int, ...]
    #: zone id -> may host local two-qubit gates.
    zone_allows_gates: tuple[bool, ...]
    #: zone id -> has an ion-photon interface.
    zone_allows_fiber: tuple[bool, ...]
    #: module id -> its zones in zone-id order.
    module_zones: tuple[tuple["Zone", ...], ...]
    #: module id -> gate-capable zones in zone-id order.
    module_gate_zones: tuple[tuple["Zone", ...], ...]
    #: module id -> optical zones in zone-id order.
    module_optical_zones: tuple[tuple["Zone", ...], ...]
    #: module id -> the set of its zone ids.
    module_zone_ids: tuple[frozenset[int], ...]
    #: (source, destination) -> shuttle hop count, reachable pairs only.
    distances: dict[tuple[int, int], int] = field(repr=False)
    #: (source, destination) -> inclusive shortest path, reachable pairs only.
    paths: dict[tuple[int, int], tuple[int, ...]] = field(repr=False)
    #: zone id -> same-module peers as ((static preference key), zone id),
    #: pre-sorted by the §3.2 eviction preference (lower level first, then
    #: level proximity to one-below, then hop distance), ties in zone-id
    #: order.  The dynamic part of the policy (free space) is applied by
    #: the caller at eviction time.
    eviction_preference: tuple[
        tuple[tuple[tuple[int, int, int], int], ...], ...
    ] = field(repr=False)
    #: zone ids the machine's fault model declares dead (empty = pristine).
    dead_zones: frozenset[int] = frozenset()
    #: failed optical links as normalised ``(module_a, module_b)`` pairs.
    blocked_links: frozenset[tuple[int, int]] = frozenset()


def topology_cache_key(machine: "Machine") -> str:
    """Stable cache key naming a machine's topology.

    Registry-built machines key on their lossless canonical spec string;
    hand-built architectures fall back to a content hash of the full
    declarative zone table + edge list, so structurally different
    machines can never collide on superficial similarity (equal zone
    counts, say).
    """
    spec = machine.spec
    if spec is not None:
        return f"spec:{spec}"
    arch = machine.architecture()
    payload = json.dumps(arch.to_dict(), sort_keys=True, default=str)
    return "arch:" + hashlib.sha256(payload.encode()).hexdigest()


def _bfs_paths(
    adjacency: dict[int, frozenset[int]], source: int
) -> dict[int, tuple[int, ...]]:
    """Full BFS from ``source``; reproduces the seed per-query BFS.

    The seed explored ``machine._adjacency[current]`` (a frozenset) in
    iteration order with first-visit parents and stopped at the queried
    destination; stopping early never changes the parents of nodes
    already reached, so one full traversal yields the exact path the
    seed would have returned for every destination.  Faulted machines
    pass their live adjacency instead, so severed edges and dead zones
    simply do not exist for routing.
    """
    parents: dict[int, int] = {source: source}
    queue = [source]
    head = 0
    while head < len(queue):
        current = queue[head]
        head += 1
        for neighbour in adjacency[current]:
            if neighbour not in parents:
                parents[neighbour] = current
                queue.append(neighbour)
    paths: dict[int, tuple[int, ...]] = {}
    for destination in parents:
        walk = [destination]
        while walk[-1] != source:
            walk.append(parents[walk[-1]])
        paths[destination] = tuple(reversed(walk))
    return paths


def _build_maps(machine: "Machine", cache_key: str) -> TopologyMaps:
    zones = machine.zones
    num_modules = 1 + max(zone.module_id for zone in zones)

    # A pristine machine uses ``_adjacency`` directly so the BFS below is
    # byte-identical to the seed; a faulted one routes over the live
    # adjacency, where dead zones and severed edges do not exist.
    model = machine.fault_model
    dead = frozenset(model.dead_zones) if model is not None else frozenset()
    blocked = (
        frozenset(model.failed_links) if model is not None else frozenset()
    )
    adjacency = machine._adjacency if model is None else machine.live_adjacency()

    module_zones: list[list] = [[] for _ in range(num_modules)]
    for zone in zones:
        module_zones[zone.module_id].append(zone)

    distances: dict[tuple[int, int], int] = {}
    paths: dict[tuple[int, int], tuple[int, ...]] = {}
    for zone in zones:
        source = zone.zone_id
        if source in dead:
            continue  # no route starts (or ends) at a dead zone
        for destination, path in _bfs_paths(adjacency, source).items():
            paths[(source, destination)] = path
            distances[(source, destination)] = len(path) - 1

    eviction_preference: list[tuple] = []
    for zone in zones:
        from_zone = zone.zone_id
        from_level = zone.level
        ranked = []
        for peer in module_zones[zone.module_id]:
            if peer.zone_id == from_zone or peer.zone_id in dead:
                continue
            distance = distances.get((from_zone, peer.zone_id))
            if distance is None:
                continue  # unreachable peer can never absorb an eviction
            static_key = (
                0 if peer.level < from_level else 1,
                abs(peer.level - (from_level - 1)),
                distance,
            )
            ranked.append((static_key, peer.zone_id))
        ranked.sort(key=lambda entry: entry[0])  # stable: zone order on ties
        eviction_preference.append(tuple(ranked))

    return TopologyMaps(
        cache_key=cache_key,
        zone_module=tuple(zone.module_id for zone in zones),
        zone_level=tuple(zone.level for zone in zones),
        zone_capacity=tuple(
            0 if zone.zone_id in dead else zone.capacity for zone in zones
        ),
        zone_allows_gates=tuple(
            zone.allows_gates and zone.zone_id not in dead for zone in zones
        ),
        zone_allows_fiber=tuple(
            zone.allows_fiber and zone.zone_id not in dead for zone in zones
        ),
        module_zones=tuple(tuple(group) for group in module_zones),
        module_gate_zones=tuple(
            tuple(
                zone
                for zone in group
                if zone.allows_gates and zone.zone_id not in dead
            )
            for group in module_zones
        ),
        module_optical_zones=tuple(
            tuple(
                zone
                for zone in group
                if zone.allows_fiber and zone.zone_id not in dead
            )
            for group in module_zones
        ),
        module_zone_ids=tuple(
            frozenset(zone.zone_id for zone in group) for group in module_zones
        ),
        distances=distances,
        paths=paths,
        eviction_preference=tuple(eviction_preference),
        dead_zones=dead,
        blocked_links=blocked,
    )


def topology_maps(machine: "Machine") -> TopologyMaps:
    """The precomputed :class:`TopologyMaps` for *machine* (cached)."""
    memo = machine.__dict__.get("_topology_maps")
    if memo is not None:
        return memo
    key = topology_cache_key(machine)
    maps = _MAPS_BY_KEY.get(key)
    if maps is None:
        maps = _build_maps(machine, key)
        if len(_MAPS_BY_KEY) >= _MAX_CACHED_TOPOLOGIES:
            _MAPS_BY_KEY.pop(next(iter(_MAPS_BY_KEY)))
        _MAPS_BY_KEY[key] = maps
    machine.__dict__["_topology_maps"] = maps
    return maps
