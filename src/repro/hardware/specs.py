"""Machine spec strings — compatibility front over the topology registry.

:func:`machine_from_spec` predates :mod:`repro.hardware.topology`; it now
delegates to the declarative machine registry, which owns the grammar
(``grid:RxC:CAP``, ``eml[:CAP[:OPTICAL]]``, ``ring:N:CAP``,
``star:H+L:CAP``, ``chain:N:CAP``, ``name?key=value&...`` query options
and ``file:path.json`` architecture files).  Specs are plain strings, so
sweep cells stay picklable and cache keys stay JSON-safe — the same
contract the compiler registry keeps for compiler specs.
"""

from __future__ import annotations

from .machine import Machine
from .topology import resolve_machine


def machine_from_spec(spec: str, num_qubits: int) -> Machine:
    """Resolve a machine spec string via the default machine registry.

    ``num_qubits`` sizes circuit-relative specs (plain ``eml``, §4 rule);
    fully pinned specs (``grid:3x4:16``, ``eml?modules=4``) ignore it.
    """
    return resolve_machine(spec, num_qubits)
