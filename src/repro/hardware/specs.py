"""Machine spec strings: ``grid:RxC:CAP`` and ``eml[:CAP[:OPTICAL]]``.

The string form the CLI, the ad-hoc sweep cells and the
:func:`repro.compile` facade share.  Specs are plain strings, so sweep
cells stay picklable and cache keys stay JSON-safe — the same contract the
compiler registry keeps for compiler specs.
"""

from __future__ import annotations

from .eml import EMLQCCDMachine, ModuleLayout
from .grid import QCCDGridMachine
from .machine import Machine


def machine_from_spec(spec: str, num_qubits: int) -> Machine:
    """Resolve a machine spec string.

    * ``grid:RxC:CAP`` — monolithic QCCD grid (baseline hardware).
    * ``eml[:CAP[:OPTICAL]]`` — EML-QCCD sized to the circuit (§4 rule).
    """
    parts = spec.split(":")
    if parts[0] == "grid":
        if len(parts) != 3:
            raise ValueError(f"grid spec must be grid:RxC:CAP, got {spec!r}")
        rows_text, _, cols_text = parts[1].partition("x")
        return QCCDGridMachine(int(rows_text), int(cols_text), int(parts[2]))
    if parts[0] == "eml":
        capacity = int(parts[1]) if len(parts) > 1 else 16
        optical = int(parts[2]) if len(parts) > 2 else 1
        layout = ModuleLayout(num_optical=optical)
        return EMLQCCDMachine.for_circuit_size(
            num_qubits, trap_capacity=capacity, layout=layout
        )
    raise ValueError(f"unknown machine spec {spec!r} (want grid:... or eml...)")
