"""Command-line experiment runner.

Usage::

    python -m repro.analysis table2          # one experiment
    python -m repro.analysis fig6 fig7       # several
    python -m repro.analysis all             # the whole evaluation section
    python -m repro.analysis all --jobs 8    # parallel cells, same output

All execution funnels through :mod:`repro.bench`: cells are served from the
on-disk result cache when possible and recomputed (optionally across a
process pool) otherwise.  Tables are printed on stdout exactly as the
original serial runner produced them; cell progress streams on stderr.
"""

from __future__ import annotations

import argparse
import sys
import time

from ..bench import stderr_progress, sweep
from .experiments import EXPERIMENTS


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Regenerate the MUSS-TI paper's tables and figures.",
    )
    parser.add_argument(
        "experiments",
        nargs="+",
        metavar="EXPERIMENT",
        help=f"one of: {', '.join(sorted(EXPERIMENTS))}, or 'all'",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes per experiment (default: 1, serial)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="recompute every cell, ignoring the on-disk result cache",
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help="stream per-cell progress on stderr",
    )
    args = parser.parse_args(argv)

    names = list(args.experiments)
    if names == ["all"]:
        names = sorted(EXPERIMENTS)
    unknown = [name for name in names if name not in EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiment(s): {', '.join(unknown)}")

    progress = stderr_progress if args.progress else None
    for name in names:
        module = EXPERIMENTS[name]
        started = time.perf_counter()
        result = sweep(
            name,
            jobs=args.jobs,
            use_cache=not args.no_cache,
            progress=progress,
        )
        elapsed = time.perf_counter() - started
        print(module.render(result.rows))
        print(f"[{name}: {len(result.rows)} rows in {elapsed:.1f} s]")
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
