"""Command-line experiment runner.

Usage::

    python -m repro.analysis table2          # one experiment
    python -m repro.analysis fig6 fig7       # several
    python -m repro.analysis all             # the whole evaluation section
"""

from __future__ import annotations

import argparse
import sys
import time

from .experiments import EXPERIMENTS


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Regenerate the MUSS-TI paper's tables and figures.",
    )
    parser.add_argument(
        "experiments",
        nargs="+",
        metavar="EXPERIMENT",
        help=f"one of: {', '.join(sorted(EXPERIMENTS))}, or 'all'",
    )
    args = parser.parse_args(argv)

    names = list(args.experiments)
    if names == ["all"]:
        names = sorted(EXPERIMENTS)
    unknown = [name for name in names if name not in EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiment(s): {', '.join(unknown)}")

    for name in names:
        module = EXPERIMENTS[name]
        started = time.perf_counter()
        rows = module.run()
        elapsed = time.perf_counter() - started
        print(module.render(rows))
        print(f"[{name}: {len(rows)} rows in {elapsed:.1f} s]")
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
