"""ASCII table rendering for experiment outputs."""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence


def format_fidelity(value: float, log10_value: float | None = None) -> str:
    """Render fidelity like the paper's tables: 0.82 or 5.9e-13."""
    if log10_value is None:
        if value <= 0.0:
            return "0.0"
        log10_value = math.log10(value)
    if log10_value >= math.log10(0.01):
        return f"{10 ** log10_value:.2f}"
    exponent = math.floor(log10_value)
    mantissa = 10.0 ** (log10_value - exponent)
    return f"{mantissa:.1f}e{exponent:+03d}"


def render_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]], title: str = ""
) -> str:
    """Monospace table with per-column width fitting."""
    materialised = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialised:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = " | ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-+-".join("-" * w for w in widths))
    for row in materialised:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def improvement_percent(baseline: float, ours: float) -> float:
    """Relative reduction of ``ours`` versus ``baseline`` in percent."""
    if baseline == 0:
        return 0.0
    return 100.0 * (baseline - ours) / baseline
