"""Shared experiment plumbing: compile-execute-report in one call.

Every experiment driver funnels through :func:`run_case`, which builds (or
accepts) the machine, compiles, optionally verifies, executes under the given
physics, and returns a flat :class:`RunResult` row that table renderers and
benchmarks consume.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

from ..baselines import DaiCompiler, MqtLikeCompiler, MuraliCompiler
from ..circuits import QuantumCircuit
from ..core import MussTiCompiler, MussTiConfig
from ..hardware import EMLQCCDMachine, Machine, ModuleLayout, QCCDGridMachine
from ..physics import PhysicalParams
from ..sim import execute, verify_program
from ..workloads import get_benchmark


@dataclass(frozen=True)
class RunResult:
    """One experiment row."""

    application: str
    compiler: str
    shuttle_count: int
    execution_time_us: float
    log10_fidelity: float
    fidelity: float
    compile_time_s: float
    fiber_gates: int
    inserted_swaps: int

    def cells(self) -> dict[str, object]:
        return {
            "app": self.application,
            "compiler": self.compiler,
            "shuttles": self.shuttle_count,
            "time_us": round(self.execution_time_us),
            "log10F": round(self.log10_fidelity, 2),
            "fidelity": self.fidelity,
            "compile_s": round(self.compile_time_s, 3),
        }


#: Compiler factories addressable by name from cell specs and the CLI.
COMPILER_FACTORIES = {
    "muss-ti": lambda: MussTiCompiler(),
    "trivial": lambda: MussTiCompiler(MussTiConfig.trivial()),
    "sabre": lambda: MussTiCompiler(MussTiConfig.sabre_only()),
    "swap-insert": lambda: MussTiCompiler(MussTiConfig.swap_insert_only()),
    "murali": MuraliCompiler,
    "dai": DaiCompiler,
    "mqt": MqtLikeCompiler,
}

#: Table 2 column order, as registry names.
TABLE2_COMPILER_NAMES = ("murali", "dai", "mqt", "muss-ti")


def make_compiler(name: str):
    """Instantiate a compiler from its registry name."""
    try:
        return COMPILER_FACTORIES[name]()
    except KeyError:
        raise ValueError(
            f"unknown compiler {name!r} (want one of {', '.join(sorted(COMPILER_FACTORIES))})"
        ) from None


#: The paper's four compared systems, in Table 2 column order.
def table2_compilers():
    return tuple(make_compiler(name) for name in TABLE2_COMPILER_NAMES)


def machine_from_spec(spec: str, num_qubits: int) -> Machine:
    """Resolve a machine spec string.

    * ``grid:RxC:CAP`` — monolithic QCCD grid (baseline hardware).
    * ``eml[:CAP[:OPTICAL]]`` — EML-QCCD sized to the circuit (§4 rule).
    """
    parts = spec.split(":")
    if parts[0] == "grid":
        if len(parts) != 3:
            raise ValueError(f"grid spec must be grid:RxC:CAP, got {spec!r}")
        rows_text, _, cols_text = parts[1].partition("x")
        return QCCDGridMachine(int(rows_text), int(cols_text), int(parts[2]))
    if parts[0] == "eml":
        capacity = int(parts[1]) if len(parts) > 1 else 16
        optical = int(parts[2]) if len(parts) > 2 else 1
        layout = ModuleLayout(num_optical=optical)
        return EMLQCCDMachine.for_circuit_size(
            num_qubits, trap_capacity=capacity, layout=layout
        )
    raise ValueError(f"unknown machine spec {spec!r} (want grid:... or eml...)")


def result_to_dict(result: RunResult) -> dict:
    """Flatten a :class:`RunResult` into a JSON-serialisable cell payload."""
    return asdict(result)


def small_grid(kind: str) -> QCCDGridMachine:
    """Table 2's two small-scale test machines."""
    if kind == "2x2":
        return QCCDGridMachine(2, 2, 12)
    if kind == "2x3":
        return QCCDGridMachine(2, 3, 8)
    raise ValueError(f"unknown small grid {kind!r}")


def eml_for(
    circuit: QuantumCircuit,
    trap_capacity: int = 16,
    num_optical: int = 1,
) -> EMLQCCDMachine:
    """MUSS-TI's machine for an application (§4 architecture setting)."""
    layout = ModuleLayout(num_optical=num_optical)
    return EMLQCCDMachine.for_circuit_size(
        circuit.num_qubits, trap_capacity=trap_capacity, layout=layout
    )


def run_case(
    compiler,
    circuit: QuantumCircuit,
    machine: Machine,
    params: PhysicalParams | None = None,
    *,
    verify: bool = False,
) -> RunResult:
    """Compile + (optionally verify) + execute one case."""
    program = compiler.compile(circuit, machine)
    if verify:
        verify_program(program)
    report = execute(program, params)
    return RunResult(
        application=circuit.name,
        compiler=program.compiler_name,
        shuttle_count=report.shuttle_count,
        execution_time_us=report.execution_time_us,
        log10_fidelity=report.log10_fidelity,
        fidelity=report.fidelity,
        compile_time_s=program.compile_time_s,
        fiber_gates=report.fiber_gate_count,
        inserted_swaps=report.inserted_swap_count,
    )


def benchmark_circuit(name: str) -> QuantumCircuit:
    """Benchmark circuit in scheduler-native form."""
    return get_benchmark(name)


def muss_ti(config: MussTiConfig | None = None) -> MussTiCompiler:
    return MussTiCompiler(config)
