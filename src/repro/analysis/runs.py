"""Shared experiment plumbing: compile-execute-report in one call.

Every experiment driver funnels through :func:`run_case`, which builds (or
accepts) the machine, compiles, optionally verifies, executes under the given
physics, and returns a flat :class:`RunResult` row that table renderers and
benchmarks consume.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

from ..circuits import QuantumCircuit
from ..core import MussTiCompiler, MussTiConfig
from ..hardware import (
    EMLQCCDMachine,
    Machine,
    ModuleLayout,
    QCCDGridMachine,
    machine_from_spec,
)
from ..physics import PhysicalParams, resolve_physics
from ..pipeline import default_registry, resolve_compiler
from ..sim import execute, price_many, verify_program
from ..workloads import get_benchmark

__all__ = [
    "RunResult",
    "TABLE2_COMPILER_NAMES",
    "benchmark_circuit",
    "eml_for",
    "machine_from_spec",
    "make_compiler",
    "multi_physics_case",
    "muss_ti",
    "resolve_physics",
    "result_to_dict",
    "run_case",
    "small_grid",
    "table2_compilers",
]


@dataclass(frozen=True)
class RunResult:
    """One experiment row."""

    application: str
    compiler: str
    shuttle_count: int
    execution_time_us: float
    log10_fidelity: float
    fidelity: float
    compile_time_s: float
    fiber_gates: int
    inserted_swaps: int

    def cells(self) -> dict[str, object]:
        return {
            "app": self.application,
            "compiler": self.compiler,
            "shuttles": self.shuttle_count,
            "time_us": round(self.execution_time_us),
            "log10F": round(self.log10_fidelity, 2),
            "fidelity": self.fidelity,
            "compile_s": round(self.compile_time_s, 3),
        }


#: Table 2 column order, straight from the compiler registry.
TABLE2_COMPILER_NAMES = default_registry().paper_suite()


def make_compiler(name: str):
    """Instantiate a compiler from a registry spec (name, or name?k=v...)."""
    return resolve_compiler(name)


#: The paper's four compared systems, in Table 2 column order.
def table2_compilers():
    return tuple(make_compiler(name) for name in TABLE2_COMPILER_NAMES)


def result_to_dict(result: RunResult) -> dict:
    """Flatten a :class:`RunResult` into a JSON-serialisable cell payload."""
    return asdict(result)


def small_grid(kind: str) -> QCCDGridMachine:
    """Table 2's two small-scale test machines."""
    if kind == "2x2":
        return QCCDGridMachine(2, 2, 12)
    if kind == "2x3":
        return QCCDGridMachine(2, 3, 8)
    raise ValueError(f"unknown small grid {kind!r}")


def eml_for(
    circuit: QuantumCircuit,
    trap_capacity: int = 16,
    num_optical: int = 1,
) -> EMLQCCDMachine:
    """MUSS-TI's machine for an application (§4 architecture setting)."""
    layout = ModuleLayout(num_optical=num_optical)
    return EMLQCCDMachine.for_circuit_size(
        circuit.num_qubits, trap_capacity=trap_capacity, layout=layout
    )


def run_case(
    compiler,
    circuit: QuantumCircuit,
    machine: Machine,
    params: PhysicalParams | str | None = None,
    *,
    verify: bool = False,
) -> RunResult:
    """Compile + (optionally verify) + execute one case.

    ``params`` accepts a ready :class:`PhysicalParams` or a physics-profile
    spec string (``"table1"``, ``"perfect-gate"``,
    ``"table1?heating_rate=0.5"``...).
    """
    program = compiler.compile(circuit, machine)
    if verify:
        verify_program(program)
    report = execute(program, resolve_physics(params))
    return RunResult(
        application=circuit.name,
        compiler=program.compiler_name,
        shuttle_count=report.shuttle_count,
        execution_time_us=report.execution_time_us,
        log10_fidelity=report.log10_fidelity,
        fidelity=report.fidelity,
        compile_time_s=program.compile_time_s,
        fiber_gates=report.fiber_gate_count,
        inserted_swaps=report.inserted_swap_count,
    )


def multi_physics_case(
    compiler,
    circuit: QuantumCircuit,
    machine: Machine,
    profiles,
    *,
    verify: bool = False,
):
    """Compile once, replay once, price under every physics profile.

    ``profiles`` maps labels to physics specs or
    :class:`PhysicalParams`; returns ``label -> ExecutionReport``.  This
    is the replay-once/price-many flow experiment drivers should use for
    Fig 13-style counterfactual grids — N parameter arms cost one
    compile + one legality-checked replay + N pricing folds.
    """
    program = compiler.compile(circuit, machine)
    if verify:
        verify_program(program)
    return price_many(program, profiles)


def benchmark_circuit(name: str) -> QuantumCircuit:
    """Benchmark circuit in scheduler-native form."""
    return get_benchmark(name)


def muss_ti(config: MussTiConfig | None = None) -> MussTiCompiler:
    return MussTiCompiler(config)
