"""Experiment harness regenerating every table and figure of the paper."""

from .experiments import EXPERIMENTS
from .runs import RunResult, eml_for, run_case, small_grid, table2_compilers
from .tables import format_fidelity, improvement_percent, render_table

__all__ = [
    "EXPERIMENTS",
    "RunResult",
    "eml_for",
    "format_fidelity",
    "improvement_percent",
    "render_table",
    "run_case",
    "small_grid",
    "table2_compilers",
]
