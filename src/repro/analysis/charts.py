"""ASCII charts for terminal-friendly figure rendering.

The paper's figures are bar/line plots; these helpers render the same data
as monospace charts so every experiment remains inspectable without
matplotlib (which the reproduction environment does not ship).
"""

from __future__ import annotations

from collections.abc import Sequence


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    *,
    width: int = 50,
    title: str = "",
    unit: str = "",
) -> str:
    """Horizontal bar chart; bars scale to the largest absolute value."""
    if len(labels) != len(values):
        raise ValueError(
            f"labels and values differ in length: {len(labels)} vs {len(values)}"
        )
    if not labels:
        return title or "(empty chart)"
    peak = max(abs(value) for value in values) or 1.0
    label_width = max(len(label) for label in labels)
    lines = [title] if title else []
    for label, value in zip(labels, values):
        bar = "#" * max(1 if value else 0, round(abs(value) / peak * width))
        lines.append(f"{label:>{label_width}} | {bar} {value:g}{unit}")
    return "\n".join(lines)


def grouped_bar_chart(
    groups: Sequence[str],
    series: dict[str, Sequence[float]],
    *,
    width: int = 40,
    title: str = "",
) -> str:
    """Grouped horizontal bars: one block per group, one bar per series.

    The paper's Fig 6 layout (per-application bars for each compiler) maps
    directly onto this.
    """
    for name, values in series.items():
        if len(values) != len(groups):
            raise ValueError(
                f"series {name!r} has {len(values)} values for "
                f"{len(groups)} groups"
            )
    if not groups or not series:
        return title or "(empty chart)"
    peak = max(
        (abs(v) for values in series.values() for v in values), default=1.0
    ) or 1.0
    name_width = max(len(name) for name in series)
    lines = [title] if title else []
    for index, group in enumerate(groups):
        lines.append(f"{group}:")
        for name, values in series.items():
            value = values[index]
            bar = "#" * max(1 if value else 0, round(abs(value) / peak * width))
            lines.append(f"  {name:>{name_width}} | {bar} {value:g}")
    return "\n".join(lines)


def sparkline(values: Sequence[float]) -> str:
    """One-line trend rendering (used for sweep summaries)."""
    if not values:
        return ""
    glyphs = " .:-=+*#%@"
    low = min(values)
    high = max(values)
    if high == low:
        return glyphs[len(glyphs) // 2] * len(values)
    scale = (len(glyphs) - 1) / (high - low)
    return "".join(glyphs[round((v - low) * scale)] for v in values)
