"""Entry point for ``python -m repro.analysis``."""

from .runner import main

raise SystemExit(main())
