"""Figure 9: look-ahead ability analysis.

Fidelity of full MUSS-TI as the weight-table look-ahead ``k`` sweeps over
{4, 6, 8, 10, 12}.  The paper's finding: the optimal k is
application-dependent — long-communication apps (SQRT, Adder) prefer larger
k; nearest-neighbour QAOA is flat.
"""

from __future__ import annotations

from ...core import MussTiConfig
from ..runs import benchmark_circuit, eml_for, muss_ti, result_to_dict, run_case
from ..tables import render_table

LOOKAHEADS = (4, 6, 8, 10, 12)
APPLICATIONS = ("QAOA_n256", "Adder_n256", "RAN_n256", "SQRT_n117", "SQRT_n299")


def cells(applications=APPLICATIONS, lookaheads=LOOKAHEADS) -> list[dict]:
    """One cell per (application, look-ahead depth)."""
    return [
        {"app": app, "k": k} for app in applications for k in lookaheads
    ]


def run_cell(spec: dict) -> dict:
    circuit = benchmark_circuit(spec["app"])
    machine = eml_for(circuit)
    config = MussTiConfig().with_lookahead(spec["k"])
    return result_to_dict(run_case(muss_ti(config), circuit, machine))


def assemble(pairs) -> list[dict]:
    return [
        {
            "app": spec["app"],
            "k": spec["k"],
            "log10F": round(result["log10_fidelity"], 2),
            "shuttles": result["shuttle_count"],
            "swaps": result["inserted_swaps"],
        }
        for spec, result in pairs
    ]


def run(applications=APPLICATIONS, lookaheads=LOOKAHEADS) -> list[dict]:
    specs = cells(applications, lookaheads)
    return assemble([(spec, run_cell(spec)) for spec in specs])


def fidelity_spread(rows: list[dict], app: str) -> float:
    """Max - min log10 fidelity across k for one application."""
    values = [row["log10F"] for row in rows if row["app"] == app]
    return max(values) - min(values)


def render(rows: list[dict]) -> str:
    headers = ["app", "k", "log10F", "shuttles", "swaps"]
    body = [[r["app"], r["k"], r["log10F"], r["shuttles"], r["swaps"]] for r in rows]
    return render_table(headers, body, title="Figure 9 - Look-ahead Analysis")
