"""Figure 6: architectural comparison across three scales.

Shuttle count, execution time and fidelity for MUSS-TI (on EML-QCCD sized to
the application) versus Murali [55] and Dai [13] (on the monolithic grids of
§4: 2x2 cap 12 for small, 3x4 cap 16 for medium, 4x5 cap 16 for large).
"""

from __future__ import annotations

from ...hardware import QCCDGridMachine
from ...workloads import LARGE_SUITE, MEDIUM_SUITE, SMALL_SUITE
from ..runs import (
    benchmark_circuit,
    eml_for,
    make_compiler,
    result_to_dict,
    run_case,
    small_grid,
)
from ..tables import improvement_percent, render_table

SCALES = {
    "small": dict(suite=SMALL_SUITE, grid=("small", None)),
    "medium": dict(suite=MEDIUM_SUITE, grid=(3, 4)),
    "large": dict(suite=LARGE_SUITE, grid=(4, 5)),
}

COMPILER_NAMES = ("murali", "dai", "muss-ti")


def _baseline_machine(scale: str) -> QCCDGridMachine:
    if scale == "small":
        return small_grid("2x2")
    rows, cols = SCALES[scale]["grid"]
    return QCCDGridMachine(rows, cols, 16)


def cells(scales=("small", "medium", "large")) -> list[dict]:
    """One cell per (scale, application, compiler)."""
    return [
        {"scale": scale, "app": app, "compiler": compiler}
        for scale in scales
        for app in SCALES[scale]["suite"]
        for compiler in COMPILER_NAMES
    ]


def run_cell(spec: dict) -> dict:
    scale = spec["scale"]
    circuit = benchmark_circuit(spec["app"])
    if spec["compiler"] == "muss-ti":
        machine = eml_for(circuit) if scale != "small" else small_grid("2x2")
    else:
        machine = _baseline_machine(scale)
    result = run_case(make_compiler(spec["compiler"]), circuit, machine)
    return result_to_dict(result)


def assemble(pairs) -> list[dict]:
    """Regroup cells into one row per (scale, app) with the derived
    shuttle-reduction column (best baseline vs MUSS-TI)."""
    groups: dict[tuple, dict] = {}
    for spec, result in pairs:
        entries = groups.setdefault((spec["scale"], spec["app"]), {})
        entries[result["compiler"]] = result
    rows: list[dict] = []
    for (scale, app), entries in groups.items():
        row: dict[str, object] = {"scale": scale, "app": app}
        row.update(
            {f"{name}/shuttles": r["shuttle_count"] for name, r in entries.items()}
        )
        row.update(
            {
                f"{name}/time": round(r["execution_time_us"])
                for name, r in entries.items()
            }
        )
        row.update(
            {
                f"{name}/log10F": round(r["log10_fidelity"], 1)
                for name, r in entries.items()
            }
        )
        if {"QCCD-Murali", "QCCD-Dai", "MUSS-TI"} <= set(entries):
            best_baseline = min(
                entries["QCCD-Murali"]["shuttle_count"],
                entries["QCCD-Dai"]["shuttle_count"],
            )
            row["shuttle_reduction_%"] = round(
                improvement_percent(
                    best_baseline, entries["MUSS-TI"]["shuttle_count"]
                ),
                1,
            )
        rows.append(row)
    return rows


def run(scales=("small", "medium", "large")) -> list[dict]:
    specs = cells(scales)
    return assemble([(spec, run_cell(spec)) for spec in specs])


def render(rows: list[dict]) -> str:
    compilers = ["QCCD-Murali", "QCCD-Dai", "MUSS-TI"]
    sections = []
    for metric, label in (
        ("shuttles", "Number of Shuttles"),
        ("time", "Time Evaluation (us)"),
        ("log10F", "Fidelity (log10)"),
    ):
        headers = ["scale", "app"] + compilers + (
            ["reduction_%"] if metric == "shuttles" else []
        )
        body = []
        for row in rows:
            cells_ = [row["scale"], row["app"]] + [
                row[f"{c}/{metric}"] for c in compilers
            ]
            if metric == "shuttles":
                cells_.append(row["shuttle_reduction_%"])
            body.append(cells_)
        sections.append(render_table(headers, body, title=f"Figure 6 - {label}"))
    return "\n\n".join(sections)
