"""Figure 6: architectural comparison across three scales.

Shuttle count, execution time and fidelity for MUSS-TI (on EML-QCCD sized to
the application) versus Murali [55] and Dai [13] (on the monolithic grids of
§4: 2x2 cap 12 for small, 3x4 cap 16 for medium, 4x5 cap 16 for large).
"""

from __future__ import annotations

from ...baselines import DaiCompiler, MuraliCompiler
from ...hardware import QCCDGridMachine
from ...workloads import LARGE_SUITE, MEDIUM_SUITE, SMALL_SUITE
from ..runs import benchmark_circuit, eml_for, muss_ti, run_case, small_grid
from ..tables import improvement_percent, render_table

SCALES = {
    "small": dict(suite=SMALL_SUITE, grid=("small", None)),
    "medium": dict(suite=MEDIUM_SUITE, grid=(3, 4)),
    "large": dict(suite=LARGE_SUITE, grid=(4, 5)),
}


def _baseline_machine(scale: str) -> QCCDGridMachine:
    if scale == "small":
        return small_grid("2x2")
    rows, cols = SCALES[scale]["grid"]
    return QCCDGridMachine(rows, cols, 16)


def run(scales=("small", "medium", "large")) -> list[dict]:
    rows: list[dict] = []
    for scale in scales:
        suite = SCALES[scale]["suite"]
        for app in suite:
            circuit = benchmark_circuit(app)
            entries = {}
            for compiler, machine in (
                (MuraliCompiler(), _baseline_machine(scale)),
                (DaiCompiler(), _baseline_machine(scale)),
                (muss_ti(), eml_for(circuit) if scale != "small" else small_grid("2x2")),
            ):
                result = run_case(compiler, circuit, machine)
                entries[result.compiler] = result
            ours = entries["MUSS-TI"]
            best_baseline = min(
                entries["QCCD-Murali"].shuttle_count,
                entries["QCCD-Dai"].shuttle_count,
            )
            rows.append(
                {
                    "scale": scale,
                    "app": app,
                    **{
                        f"{name}/shuttles": r.shuttle_count
                        for name, r in entries.items()
                    },
                    **{
                        f"{name}/time": round(r.execution_time_us)
                        for name, r in entries.items()
                    },
                    **{
                        f"{name}/log10F": round(r.log10_fidelity, 1)
                        for name, r in entries.items()
                    },
                    "shuttle_reduction_%": round(
                        improvement_percent(best_baseline, ours.shuttle_count), 1
                    ),
                }
            )
    return rows


def render(rows: list[dict]) -> str:
    compilers = ["QCCD-Murali", "QCCD-Dai", "MUSS-TI"]
    sections = []
    for metric, label in (
        ("shuttles", "Number of Shuttles"),
        ("time", "Time Evaluation (us)"),
        ("log10F", "Fidelity (log10)"),
    ):
        headers = ["scale", "app"] + compilers + (
            ["reduction_%"] if metric == "shuttles" else []
        )
        body = []
        for row in rows:
            cells = [row["scale"], row["app"]] + [
                row[f"{c}/{metric}"] for c in compilers
            ]
            if metric == "shuttles":
                cells.append(row["shuttle_reduction_%"])
            body.append(cells)
        sections.append(render_table(headers, body, title=f"Figure 6 - {label}"))
    return "\n\n".join(sections)
