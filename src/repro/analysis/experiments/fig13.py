"""Figure 13: optimality analysis under idealised physics.

Re-prices the *same* MUSS-TI schedule under three parameter sets: the real
Table 1 physics, a perfect-gate model (two-qubit fidelity pinned at 0.9999)
and a perfect-shuttle model (no motional heating).  Because compilers emit
descriptive op streams, no recompilation is involved — exactly the
counterfactual the paper describes.

Paper's findings reproduced: MUSS-TI sits close to both ideal bounds, and
perfect gates usually help more than perfect shuttling.
"""

from __future__ import annotations

from ...physics import PhysicalParams
from ...sim import execute
from ..runs import benchmark_circuit, eml_for, muss_ti
from ..tables import render_table

APPLICATIONS = (
    "Adder_n128",
    "BV_n128",
    "GHZ_n128",
    "QAOA_n128",
    "SQRT_n117",
    "Adder_n298",
    "BV_n298",
    "GHZ_n298",
    "QAOA_n298",
    "SQRT_n299",
)


def run(applications=APPLICATIONS) -> list[dict]:
    base = PhysicalParams()
    variants = (
        ("Perfect Gate", base.perfect_gate()),
        ("Perfect Shuttle", base.perfect_shuttle()),
        ("MUSS-TI", base),
    )
    rows: list[dict] = []
    for app in applications:
        circuit = benchmark_circuit(app)
        machine = eml_for(circuit)
        program = muss_ti().compile(circuit, machine)
        row: dict[str, object] = {"app": app}
        for label, params in variants:
            report = execute(program, params)
            row[f"{label}/log10F"] = round(report.log10_fidelity, 2)
        rows.append(row)
    return rows


def render(rows: list[dict]) -> str:
    labels = ("Perfect Gate", "Perfect Shuttle", "MUSS-TI")
    headers = ["app"] + list(labels)
    body = [[row["app"]] + [row[f"{l}/log10F"] for l in labels] for row in rows]
    return render_table(headers, body, title="Figure 13 - Optimality (log10 F)")
