"""Figure 13: optimality analysis under idealised physics.

Re-prices the *same* MUSS-TI schedule under three parameter sets: the real
Table 1 physics, a perfect-gate model (two-qubit fidelity pinned at 0.9999)
and a perfect-shuttle model (no motional heating).  Because compilers emit
descriptive op streams, no recompilation is involved — exactly the
counterfactual the paper describes.

Each application is one cell: the schedule is compiled once and re-priced
under all three parameter sets inside the cell, so the counterfactual
stays recompilation-free even under the parallel engine.

Paper's findings reproduced: MUSS-TI sits close to both ideal bounds, and
perfect gates usually help more than perfect shuttling.
"""

from __future__ import annotations

from ...physics import PhysicalParams
from ...sim import execute
from ..runs import benchmark_circuit, eml_for, muss_ti
from ..tables import render_table

APPLICATIONS = (
    "Adder_n128",
    "BV_n128",
    "GHZ_n128",
    "QAOA_n128",
    "SQRT_n117",
    "Adder_n298",
    "BV_n298",
    "GHZ_n298",
    "QAOA_n298",
    "SQRT_n299",
)

LABELS = ("Perfect Gate", "Perfect Shuttle", "MUSS-TI")


def cells(applications=APPLICATIONS) -> list[dict]:
    """One cell per application (one compile, three re-pricings)."""
    return [{"app": app} for app in applications]


def run_cell(spec: dict) -> dict:
    base = PhysicalParams()
    variants = (
        ("Perfect Gate", base.perfect_gate()),
        ("Perfect Shuttle", base.perfect_shuttle()),
        ("MUSS-TI", base),
    )
    circuit = benchmark_circuit(spec["app"])
    machine = eml_for(circuit)
    program = muss_ti().compile(circuit, machine)
    return {
        label: execute(program, params).log10_fidelity
        for label, params in variants
    }


def assemble(pairs) -> list[dict]:
    rows: list[dict] = []
    for spec, result in pairs:
        row: dict[str, object] = {"app": spec["app"]}
        for label in LABELS:
            row[f"{label}/log10F"] = round(result[label], 2)
        rows.append(row)
    return rows


def run(applications=APPLICATIONS) -> list[dict]:
    specs = cells(applications)
    return assemble([(spec, run_cell(spec)) for spec in specs])


def render(rows: list[dict]) -> str:
    headers = ["app"] + list(LABELS)
    body = [[row["app"]] + [row[f"{l}/log10F"] for l in LABELS] for row in rows]
    return render_table(headers, body, title="Figure 13 - Optimality (log10 F)")
