"""Figure 13: optimality analysis under idealised physics.

Re-prices the *same* MUSS-TI schedule under three physics profiles: the
real Table 1 physics, a perfect-gate model (two-qubit fidelity pinned at
0.9999) and a perfect-shuttle model (no motional heating).  The schedule
is replayed **once** into a timed-event ledger
(:func:`repro.sim.replay`) and each profile is one pricing fold
(:meth:`~repro.sim.EventLedger.reprice`) — no recompilation and no
re-validation, exactly the counterfactual the paper describes.  Adding a
parameter arm is one more ``(label, physics spec)`` pair in
:data:`PROFILES`.

Each application is one cell: compile + replay + all profile folds
happen inside the cell, so the counterfactual stays recompilation-free
even under the parallel engine.

Paper's findings reproduced: MUSS-TI sits close to both ideal bounds, and
perfect gates usually help more than perfect shuttling.
"""

from __future__ import annotations

from ...sim import replay
from ..runs import benchmark_circuit, eml_for, muss_ti, resolve_physics
from ..tables import render_table

APPLICATIONS = (
    "Adder_n128",
    "BV_n128",
    "GHZ_n128",
    "QAOA_n128",
    "SQRT_n117",
    "Adder_n298",
    "BV_n298",
    "GHZ_n298",
    "QAOA_n298",
    "SQRT_n299",
)

#: (column label, physics-profile spec) — one pricing fold per entry.
PROFILES = (
    ("Perfect Gate", "perfect-gate"),
    ("Perfect Shuttle", "perfect-shuttle"),
    ("MUSS-TI", "table1"),
)

LABELS = tuple(label for label, _ in PROFILES)


def cells(applications=APPLICATIONS) -> list[dict]:
    """One cell per application (one compile + replay, N re-pricings)."""
    return [{"app": app} for app in applications]


def run_cell(spec: dict) -> dict:
    circuit = benchmark_circuit(spec["app"])
    machine = eml_for(circuit)
    ledger = replay(muss_ti().compile(circuit, machine))
    return {
        label: ledger.reprice(resolve_physics(physics)).log10_fidelity
        for label, physics in PROFILES
    }


def assemble(pairs) -> list[dict]:
    rows: list[dict] = []
    for spec, result in pairs:
        row: dict[str, object] = {"app": spec["app"]}
        for label in LABELS:
            row[f"{label}/log10F"] = round(result[label], 2)
        rows.append(row)
    return rows


def run(applications=APPLICATIONS) -> list[dict]:
    specs = cells(applications)
    return assemble([(spec, run_cell(spec)) for spec in specs])


def render(rows: list[dict]) -> str:
    headers = ["app"] + list(LABELS)
    body = [[row["app"]] + [row[f"{l}/log10F"] for l in LABELS] for row in rows]
    return render_table(headers, body, title="Figure 13 - Optimality (log10 F)")
