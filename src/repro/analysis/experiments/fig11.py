"""Figure 11: compilation time versus fidelity trade-off.

The four ablation arms on one complex application (SQRT_n128) and one simple
application (BV_n128).  The paper's finding: the combined strategy is the
fidelity winner in both, at the price of the longest compile time.
"""

from __future__ import annotations

from ...core import MussTiConfig
from ..runs import benchmark_circuit, eml_for, muss_ti, result_to_dict, run_case
from ..tables import render_table

APPLICATIONS = ("SQRT_n128", "BV_n128")

ARMS = (
    ("Trivial", MussTiConfig.trivial),
    ("SWAP Insert", MussTiConfig.swap_insert_only),
    ("SABRE", MussTiConfig.sabre_only),
    ("SWAP Insert + SABRE", MussTiConfig.full),
)

ARM_CONFIGS = dict(ARMS)


def cells(applications=APPLICATIONS) -> list[dict]:
    """One cell per (application, ablation arm)."""
    return [
        {"app": app, "arm": label}
        for app in applications
        for label, _ in ARMS
    ]


def run_cell(spec: dict) -> dict:
    circuit = benchmark_circuit(spec["app"])
    machine = eml_for(circuit)
    config = ARM_CONFIGS[spec["arm"]]()
    return result_to_dict(run_case(muss_ti(config), circuit, machine))


def assemble(pairs) -> list[dict]:
    return [
        {
            "app": spec["app"],
            "technique": spec["arm"],
            "compile_s": round(result["compile_time_s"], 3),
            "log10F": round(result["log10_fidelity"], 2),
        }
        for spec, result in pairs
    ]


def run(applications=APPLICATIONS) -> list[dict]:
    specs = cells(applications)
    return assemble([(spec, run_cell(spec)) for spec in specs])


def render(rows: list[dict]) -> str:
    headers = ["app", "technique", "compile_s", "log10F"]
    body = [[r["app"], r["technique"], r["compile_s"], r["log10F"]] for r in rows]
    return render_table(
        headers, body, title="Figure 11 - Compile Time vs Fidelity"
    )
