"""Table 2: small-scale comparison on standard QCCD grids.

Four compilers (Murali [55], Dai [13], MQT-like [70], MUSS-TI) on the six
30-32 qubit applications, over Grid 2x2 (trap capacity 12) and Grid 2x3
(trap capacity 8).  Reports shuttle count, execution time and fidelity —
the exact cells of the paper's Table 2.
"""

from __future__ import annotations

from ...workloads import SMALL_SUITE
from ..runs import (
    TABLE2_COMPILER_NAMES,
    benchmark_circuit,
    make_compiler,
    result_to_dict,
    run_case,
    small_grid,
)
from ..tables import format_fidelity, render_table

GRIDS = ("2x2", "2x3")


def cells(applications=SMALL_SUITE, grids=GRIDS) -> list[dict]:
    """One cell per (grid, application, compiler)."""
    return [
        {"grid": grid, "app": app, "compiler": compiler}
        for grid in grids
        for app in applications
        for compiler in TABLE2_COMPILER_NAMES
    ]


def run_cell(spec: dict) -> dict:
    circuit = benchmark_circuit(spec["app"])
    machine = small_grid(spec["grid"])
    result = run_case(make_compiler(spec["compiler"]), circuit, machine)
    return result_to_dict(result)


def assemble(pairs) -> list[dict]:
    """Regroup cells into one row per (grid, app), compilers as columns."""
    rows: dict[tuple, dict] = {}
    for spec, result in pairs:
        row = rows.setdefault(
            (spec["grid"], spec["app"]), {"grid": spec["grid"], "app": spec["app"]}
        )
        name = result["compiler"]
        row[f"{name}/shuttles"] = result["shuttle_count"]
        row[f"{name}/time"] = round(result["execution_time_us"])
        row[f"{name}/fidelity"] = format_fidelity(
            result["fidelity"], result["log10_fidelity"]
        )
    return list(rows.values())


def run(applications=SMALL_SUITE, grids=GRIDS) -> list[dict]:
    """Execute the full Table 2 matrix; returns one row per (grid, app)."""
    specs = cells(applications, grids)
    return assemble([(spec, run_cell(spec)) for spec in specs])


def render(rows: list[dict]) -> str:
    compilers = ["QCCD-Murali", "QCCD-Dai", "QCCD-MQT", "MUSS-TI"]
    sections = []
    for metric, label in (
        ("shuttles", "Shuttle Count"),
        ("time", "Execution Time (us)"),
        ("fidelity", "Fidelity"),
    ):
        headers = ["grid", "app"] + compilers
        body = [
            [row["grid"], row["app"]] + [row[f"{c}/{metric}"] for c in compilers]
            for row in rows
        ]
        sections.append(render_table(headers, body, title=f"Table 2 - {label}"))
    return "\n\n".join(sections)
