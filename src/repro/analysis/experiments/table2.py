"""Table 2: small-scale comparison on standard QCCD grids.

Four compilers (Murali [55], Dai [13], MQT-like [70], MUSS-TI) on the six
30-32 qubit applications, over Grid 2x2 (trap capacity 12) and Grid 2x3
(trap capacity 8).  Reports shuttle count, execution time and fidelity —
the exact cells of the paper's Table 2.
"""

from __future__ import annotations

from ...workloads import SMALL_SUITE
from ..runs import RunResult, benchmark_circuit, run_case, small_grid, table2_compilers
from ..tables import format_fidelity, render_table

GRIDS = ("2x2", "2x3")


def run(applications=SMALL_SUITE, grids=GRIDS) -> list[dict]:
    """Execute the full Table 2 matrix; returns one row per (grid, app)."""
    rows: list[dict] = []
    for grid_kind in grids:
        for app in applications:
            circuit = benchmark_circuit(app)
            row: dict[str, object] = {"grid": grid_kind, "app": app}
            for compiler in table2_compilers():
                machine = small_grid(grid_kind)
                result: RunResult = run_case(compiler, circuit, machine)
                row[f"{result.compiler}/shuttles"] = result.shuttle_count
                row[f"{result.compiler}/time"] = round(result.execution_time_us)
                row[f"{result.compiler}/fidelity"] = format_fidelity(
                    result.fidelity, result.log10_fidelity
                )
            rows.append(row)
    return rows


def render(rows: list[dict]) -> str:
    compilers = ["QCCD-Murali", "QCCD-Dai", "QCCD-MQT", "MUSS-TI"]
    sections = []
    for metric, label in (
        ("shuttles", "Shuttle Count"),
        ("time", "Execution Time (us)"),
        ("fidelity", "Fidelity"),
    ):
        headers = ["grid", "app"] + compilers
        body = [
            [row["grid"], row["app"]] + [row[f"{c}/{metric}"] for c in compilers]
            for row in rows
        ]
        sections.append(render_table(headers, body, title=f"Table 2 - {label}"))
    return "\n\n".join(sections)
