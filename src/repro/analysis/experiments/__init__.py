"""One driver module per paper table/figure.

Each module exposes the sweep-engine protocol:

* ``cells(...) -> list[dict]`` — the grid of independent cells
  (workload x machine x compiler config) as JSON-scalar specs;
* ``run_cell(spec) -> dict`` — execute one cell (pure, picklable, so the
  engine can farm it out to worker processes and cache the payload);
* ``assemble(pairs) -> list[dict]`` — regroup ``(spec, result)`` pairs,
  in cell-declaration order, into the driver's row schema;
* ``run(...) -> list[dict]`` — serial convenience wrapper
  (``assemble`` over in-process ``run_cell`` calls);
* ``render(rows) -> str`` — the paper-style ASCII table.
"""

from . import (
    ablation,
    fig6,
    fig7,
    fig8,
    fig9,
    fig10,
    fig11,
    fig12,
    fig13,
    table2,
)

#: The paper's evaluation section: what ``python -m repro.analysis all`` runs.
EXPERIMENTS = {
    "table2": table2,
    "fig6": fig6,
    "fig7": fig7,
    "fig8": fig8,
    "fig9": fig9,
    "fig10": fig10,
    "fig11": fig11,
    "fig12": fig12,
    "fig13": fig13,
}

#: Every sweepable driver, including extras beyond the paper's figures.
ALL_EXPERIMENTS = {**EXPERIMENTS, "ablation": ablation}

__all__ = ["ALL_EXPERIMENTS", "EXPERIMENTS"] + sorted(ALL_EXPERIMENTS)
