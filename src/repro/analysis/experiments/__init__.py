"""One driver module per paper table/figure.

Each module exposes ``run(...) -> list[dict]`` returning structured rows and
``render(rows) -> str`` producing the paper-style ASCII table.
"""

from . import (
    fig6,
    fig7,
    fig8,
    fig9,
    fig10,
    fig11,
    fig12,
    fig13,
    table2,
)

#: Experiment registry for the CLI and the benchmark harness.
EXPERIMENTS = {
    "table2": table2,
    "fig6": fig6,
    "fig7": fig7,
    "fig8": fig8,
    "fig9": fig9,
    "fig10": fig10,
    "fig11": fig11,
    "fig12": fig12,
    "fig13": fig13,
}

__all__ = ["EXPERIMENTS"] + sorted(EXPERIMENTS)
