"""Figure 8: ablation of MUSS-TI's compilation techniques.

Four arms — Trivial, SWAP Insert, SABRE, SABRE + SWAP Insert — across the
medium and large suites.  The paper's finding: SWAP insertion alone helps a
little (it fires rarely from a trivial mapping), SABRE helps more, and the
combination wins.
"""

from __future__ import annotations

from ...core import MussTiConfig
from ...workloads import LARGE_SUITE, MEDIUM_SUITE
from ..runs import benchmark_circuit, eml_for, muss_ti, run_case
from ..tables import render_table

ARMS = (
    ("Trivial", MussTiConfig.trivial),
    ("SWAP Insert", MussTiConfig.swap_insert_only),
    ("SABRE", MussTiConfig.sabre_only),
    ("SABRE + SWAP Insert", MussTiConfig.full),
)

APPLICATIONS = tuple(MEDIUM_SUITE) + tuple(LARGE_SUITE)


def run(applications=APPLICATIONS) -> list[dict]:
    rows: list[dict] = []
    for app in applications:
        circuit = benchmark_circuit(app)
        row: dict[str, object] = {"app": app}
        for label, make_config in ARMS:
            machine = eml_for(circuit)
            result = run_case(muss_ti(make_config()), circuit, machine)
            row[f"{label}/log10F"] = round(result.log10_fidelity, 2)
            row[f"{label}/shuttles"] = result.shuttle_count
        rows.append(row)
    return rows


def render(rows: list[dict]) -> str:
    headers = ["app"] + [label for label, _ in ARMS]
    body = [
        [row["app"]] + [row[f"{label}/log10F"] for label, _ in ARMS]
        for row in rows
    ]
    return render_table(
        headers, body, title="Figure 8 - Compilation Techniques (log10 fidelity)"
    )
