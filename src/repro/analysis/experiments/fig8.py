"""Figure 8: ablation of MUSS-TI's compilation techniques.

Four arms — Trivial, SWAP Insert, SABRE, SABRE + SWAP Insert — across the
medium and large suites.  The paper's finding: SWAP insertion alone helps a
little (it fires rarely from a trivial mapping), SABRE helps more, and the
combination wins.
"""

from __future__ import annotations

from ...core import MussTiConfig
from ...workloads import LARGE_SUITE, MEDIUM_SUITE
from ..runs import benchmark_circuit, eml_for, muss_ti, result_to_dict, run_case
from ..tables import render_table

ARMS = (
    ("Trivial", MussTiConfig.trivial),
    ("SWAP Insert", MussTiConfig.swap_insert_only),
    ("SABRE", MussTiConfig.sabre_only),
    ("SABRE + SWAP Insert", MussTiConfig.full),
)

ARM_CONFIGS = dict(ARMS)

APPLICATIONS = tuple(MEDIUM_SUITE) + tuple(LARGE_SUITE)


def cells(applications=APPLICATIONS) -> list[dict]:
    """One cell per (application, ablation arm)."""
    return [
        {"app": app, "arm": label}
        for app in applications
        for label, _ in ARMS
    ]


def run_cell(spec: dict) -> dict:
    circuit = benchmark_circuit(spec["app"])
    machine = eml_for(circuit)
    config = ARM_CONFIGS[spec["arm"]]()
    return result_to_dict(run_case(muss_ti(config), circuit, machine))


def assemble(pairs) -> list[dict]:
    rows: dict[str, dict] = {}
    for spec, result in pairs:
        row = rows.setdefault(spec["app"], {"app": spec["app"]})
        label = spec["arm"]
        row[f"{label}/log10F"] = round(result["log10_fidelity"], 2)
        row[f"{label}/shuttles"] = result["shuttle_count"]
    return list(rows.values())


def run(applications=APPLICATIONS) -> list[dict]:
    specs = cells(applications)
    return assemble([(spec, run_cell(spec)) for spec in specs])


def render(rows: list[dict]) -> str:
    headers = ["app"] + [label for label, _ in ARMS]
    body = [
        [row["app"]] + [row[f"{label}/log10F"] for label, _ in ARMS]
        for row in rows
    ]
    return render_table(
        headers, body, title="Figure 8 - Compilation Techniques (log10 fidelity)"
    )
