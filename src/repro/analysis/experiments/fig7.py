"""Figure 7: trap-capacity analysis of EML-QCCD.

Fidelity of MUSS-TI-compiled applications as trap capacity sweeps 12-20.
The paper's observation: fidelity peaks at an interior capacity (roughly
14-18) — small traps shuttle too much (heat), large traps degrade two-qubit
gates (the 1 - eps*N^2 law).
"""

from __future__ import annotations

from ..runs import benchmark_circuit, eml_for, muss_ti, result_to_dict, run_case

CAPACITIES = (12, 14, 16, 18, 20)
APPLICATIONS = ("Adder_n128", "BV_n128", "GHZ_n128", "QAOA_n128", "SQRT_n299")


def cells(applications=APPLICATIONS, capacities=CAPACITIES) -> list[dict]:
    """One cell per (application, trap capacity)."""
    return [
        {"app": app, "capacity": capacity}
        for app in applications
        for capacity in capacities
    ]


def run_cell(spec: dict) -> dict:
    circuit = benchmark_circuit(spec["app"])
    machine = eml_for(circuit, trap_capacity=spec["capacity"])
    return result_to_dict(run_case(muss_ti(), circuit, machine))


def assemble(pairs) -> list[dict]:
    return [
        {
            "app": spec["app"],
            "capacity": spec["capacity"],
            "shuttles": result["shuttle_count"],
            "log10F": round(result["log10_fidelity"], 2),
            "fidelity": result["fidelity"],
        }
        for spec, result in pairs
    ]


def run(applications=APPLICATIONS, capacities=CAPACITIES) -> list[dict]:
    specs = cells(applications, capacities)
    return assemble([(spec, run_cell(spec)) for spec in specs])


def best_capacity(rows: list[dict], app: str) -> int:
    """Capacity with the highest fidelity for an application."""
    candidates = [row for row in rows if row["app"] == app]
    return max(candidates, key=lambda row: row["log10F"])["capacity"]


def render(rows: list[dict]) -> str:
    from ..tables import render_table

    headers = ["app", "capacity", "shuttles", "log10F"]
    body = [[r["app"], r["capacity"], r["shuttles"], r["log10F"]] for r in rows]
    table = render_table(headers, body, title="Figure 7 - Trap Capacity Analysis")
    apps = sorted({r["app"] for r in rows})
    peaks = ", ".join(f"{app}: best capacity {best_capacity(rows, app)}" for app in apps)
    return f"{table}\n\nFidelity peaks -> {peaks}"
