"""Refinement ablation: this implementation's switchable extras beyond §3.

DESIGN.md documents four refinements on top of the paper's described
algorithm; this driver quantifies the two that are switchable:

* **LRU vs FIFO eviction** (the paper's §3.2 policy vs. the naive one).
* **Batch demotion slack** (``optical_slack``) on the fiber path.

Not part of the paper's evaluation section, so it is excluded from
``python -m repro.analysis all`` but registered with the sweep engine
(``python -m repro bench ablation``) and regression-checked in
``benchmarks/test_ablation_refinements.py``.
"""

from __future__ import annotations

from dataclasses import replace

from ...core import MussTiCompiler, MussTiConfig
from ..runs import benchmark_circuit, eml_for, result_to_dict, run_case
from ..tables import render_table

APPLICATIONS = ("Adder_n128", "BV_n128", "SQRT_n117")

ARM_NAMES = ("full", "fifo-eviction", "no-slack")


def _arm_config(arm: str) -> MussTiConfig:
    if arm == "full":
        return MussTiConfig()
    if arm == "fifo-eviction":
        return MussTiConfig(use_lru=False)
    if arm == "no-slack":
        return replace(MussTiConfig(), optical_slack=0)
    raise ValueError(f"unknown ablation arm {arm!r}")


def cells(applications=APPLICATIONS, arms=ARM_NAMES) -> list[dict]:
    """One cell per (application, refinement arm)."""
    return [{"app": app, "arm": arm} for app in applications for arm in arms]


def run_cell(spec: dict) -> dict:
    circuit = benchmark_circuit(spec["app"])
    machine = eml_for(circuit)
    compiler = MussTiCompiler(_arm_config(spec["arm"]))
    return result_to_dict(run_case(compiler, circuit, machine))


def assemble(pairs) -> list[dict]:
    rows: dict[str, dict] = {}
    for spec, result in pairs:
        row = rows.setdefault(spec["app"], {"app": spec["app"]})
        label = spec["arm"]
        row[f"{label}/shuttles"] = result["shuttle_count"]
        row[f"{label}/log10F"] = round(result["log10_fidelity"], 1)
    return list(rows.values())


def run(applications=APPLICATIONS, arms=ARM_NAMES) -> list[dict]:
    specs = cells(applications, arms)
    return assemble([(spec, run_cell(spec)) for spec in specs])


def render(rows: list[dict]) -> str:
    headers = ["app"] + [f"{arm} (shuttles / log10F)" for arm in ARM_NAMES]
    body = [
        [row["app"]]
        + [f"{row[f'{arm}/shuttles']} / {row[f'{arm}/log10F']}" for arm in ARM_NAMES]
        for row in rows
    ]
    return render_table(headers, body, title="Refinement ablation (shuttles / log10F)")
