"""Figure 12: multiple entanglement (optical) zone analysis.

Fidelity of the large applications when each EML module has one versus two
optical zones.  The paper's finding: two zones win on most applications by
spreading fiber traffic (and therefore heat) across zones.
"""

from __future__ import annotations

from ...workloads import LARGE_SUITE
from ..runs import benchmark_circuit, eml_for, muss_ti, result_to_dict, run_case
from ..tables import render_table

ZONE_COUNTS = (1, 2)


def cells(applications=LARGE_SUITE, zone_counts=ZONE_COUNTS) -> list[dict]:
    """One cell per (application, optical-zone count)."""
    return [
        {"app": app, "zones": zones}
        for app in applications
        for zones in zone_counts
    ]


def run_cell(spec: dict) -> dict:
    circuit = benchmark_circuit(spec["app"])
    machine = eml_for(circuit, num_optical=spec["zones"])
    return result_to_dict(run_case(muss_ti(), circuit, machine))


def assemble(pairs) -> list[dict]:
    rows: dict[str, dict] = {}
    for spec, result in pairs:
        row = rows.setdefault(spec["app"], {"app": spec["app"]})
        zones = spec["zones"]
        row[f"{zones}-zone/log10F"] = round(result["log10_fidelity"], 2)
        row[f"{zones}-zone/shuttles"] = result["shuttle_count"]
    return list(rows.values())


def run(applications=LARGE_SUITE, zone_counts=ZONE_COUNTS) -> list[dict]:
    specs = cells(applications, zone_counts)
    return assemble([(spec, run_cell(spec)) for spec in specs])


def render(rows: list[dict]) -> str:
    headers = ["app", "single zone log10F", "two zones log10F", "winner"]
    body = []
    for row in rows:
        single = row["1-zone/log10F"]
        double = row["2-zone/log10F"]
        winner = "two" if double > single else ("single" if single > double else "tie")
        body.append([row["app"], single, double, winner])
    return render_table(
        headers, body, title="Figure 12 - Multiple Entanglement Zones"
    )
