"""Figure 12: multiple entanglement (optical) zone analysis.

Fidelity of the large applications when each EML module has one versus two
optical zones.  The paper's finding: two zones win on most applications by
spreading fiber traffic (and therefore heat) across zones.
"""

from __future__ import annotations

from ...workloads import LARGE_SUITE
from ..runs import benchmark_circuit, eml_for, muss_ti, run_case
from ..tables import render_table

ZONE_COUNTS = (1, 2)


def run(applications=LARGE_SUITE, zone_counts=ZONE_COUNTS) -> list[dict]:
    rows: list[dict] = []
    for app in applications:
        circuit = benchmark_circuit(app)
        row: dict[str, object] = {"app": app}
        for zones in zone_counts:
            machine = eml_for(circuit, num_optical=zones)
            result = run_case(muss_ti(), circuit, machine)
            row[f"{zones}-zone/log10F"] = round(result.log10_fidelity, 2)
            row[f"{zones}-zone/shuttles"] = result.shuttle_count
        rows.append(row)
    return rows


def render(rows: list[dict]) -> str:
    headers = ["app", "single zone log10F", "two zones log10F", "winner"]
    body = []
    for row in rows:
        single = row["1-zone/log10F"]
        double = row["2-zone/log10F"]
        winner = "two" if double > single else ("single" if single > double else "tie")
        body.append([row["app"], single, double, winner])
    return render_table(
        headers, body, title="Figure 12 - Multiple Entanglement Zones"
    )
