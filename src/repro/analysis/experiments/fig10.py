"""Figure 10: compilation-time scalability.

Wall-clock compile time of full MUSS-TI for Adder, BV, GHZ and QAOA as the
application size grows 150 -> 300 qubits.  The paper's point: O(n*g) scaling
— compile time grows with size but not exponentially.
"""

from __future__ import annotations

from ...workloads import get_benchmark
from ..runs import eml_for, muss_ti
from ..tables import render_table

SIZES = (150, 200, 250, 300)
FAMILIES = ("Adder", "BV", "GHZ", "QAOA")


def cells(families=FAMILIES, sizes=SIZES) -> list[dict]:
    """One cell per (family, size): a compile-only measurement."""
    return [
        {"family": family, "size": size}
        for family in families
        for size in sizes
    ]


def run_cell(spec: dict) -> dict:
    circuit = get_benchmark(f"{spec['family']}_n{spec['size']}")
    machine = eml_for(circuit)
    program = muss_ti().compile(circuit, machine)
    return {"gates": len(circuit), "compile_s": program.compile_time_s}


def assemble(pairs) -> list[dict]:
    return [
        {
            "app": spec["family"],
            "size": spec["size"],
            "gates": result["gates"],
            "compile_s": round(result["compile_s"], 3),
        }
        for spec, result in pairs
    ]


def run(families=FAMILIES, sizes=SIZES) -> list[dict]:
    specs = cells(families, sizes)
    return assemble([(spec, run_cell(spec)) for spec in specs])


def is_subexponential(rows: list[dict], family: str) -> bool:
    """Check compile time grows slower than doubling per +50 qubits."""
    times = [row["compile_s"] for row in rows if row["app"] == family]
    return all(
        later <= max(4.0 * earlier, earlier + 1.0)
        for earlier, later in zip(times, times[1:])
    )


def render(rows: list[dict]) -> str:
    headers = ["app", "size", "gates", "compile_s"]
    body = [[r["app"], r["size"], r["gates"], r["compile_s"]] for r in rows]
    return render_table(headers, body, title="Figure 10 - Compilation Time (s)")
