"""Declarative fault models: degraded hardware as data, not subclasses.

Production trapped-ion fleets never run pristine hardware — junctions
die, optical links drop, entanglers degrade — so every machine in this
repository can carry a :class:`FaultModel`: a frozen, canonical record
of which resources are gone or degraded.  Four fault kinds cover the
resources an EML/QCCD machine actually loses:

* **dead zones** — a trap zone is unusable: nothing may be placed there,
  routed through it, or gated in it;
* **severed edges** — a shuttle junction between two adjacent zones is
  broken: BFS routing must go around it;
* **failed links** — the optical fiber between two modules is down: no
  fiber gate or remote SWAP may cross it;
* **entangler eps** — a module's photonic entangler is degraded: every
  fiber entangling operation touching that module pays an extra
  per-operation infidelity ``eps``.

Fault models ride on machine spec strings as ordinary query options
(``eml:16:2?dead_zones=3,7&failed_links=0-1&entangler_eps=2:0.02``),
lower losslessly through ``ArchitectureSpec.to_dict``/``from_dict``,
and are consumed by the topology maps (routing/placement avoid faults
for free), the replay legality checks, and the physics fold (degraded
entanglers price in).  An **empty model is byte-identical to no model**:
every consumer branches to the pristine code path when the model is
``None`` or empty.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from ..specstrings import suggest_key

__all__ = [
    "FAULT_KEYS",
    "FaultError",
    "FaultModel",
    "parse_fault_options",
    "split_fault_options",
]

#: The query keys of the fault grammar, in canonical (sorted) order.
#: Any machine spec may carry them; :meth:`MachineRegistry.parse` splits
#: them off before the builder sees its options.
FAULT_KEYS: tuple[str, ...] = (
    "dead_zones",
    "entangler_eps",
    "failed_links",
    "severed_edges",
)


class FaultError(ValueError):
    """A fault spec is malformed or names resources the machine lacks."""


def _parse_int(text: str, *, key: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise FaultError(
            f"bad {key} entry {text!r}: want a non-negative integer"
        ) from None
    if value < 0:
        raise FaultError(f"bad {key} entry {text!r}: want a non-negative integer")
    return value


def _parse_pair(text: str, *, key: str, what: str) -> tuple[int, int]:
    a_text, sep, b_text = text.partition("-")
    if not sep:
        raise FaultError(
            f"bad {key} entry {text!r}: want a {what} pair like 0-1"
        )
    a = _parse_int(a_text.strip(), key=key)
    b = _parse_int(b_text.strip(), key=key)
    if a == b:
        raise FaultError(
            f"bad {key} entry {text!r}: the two {what} ids must differ"
        )
    return (min(a, b), max(a, b))


def _parse_eps(text: str, *, key: str) -> tuple[int, float]:
    module_text, sep, eps_text = text.partition(":")
    if not sep:
        raise FaultError(
            f"bad {key} entry {text!r}: want module:eps like 2:0.02"
        )
    module = _parse_int(module_text.strip(), key=key)
    try:
        eps = float(eps_text)
    except ValueError:
        raise FaultError(
            f"bad {key} entry {text!r}: eps must be a number"
        ) from None
    if not 0.0 < eps < 1.0:
        raise FaultError(
            f"bad {key} entry {text!r}: eps must be in (0, 1)"
        )
    return (module, eps)


def _split_entries(value: Any, *, key: str) -> list[str]:
    # Spec query values arrive pre-coerced (a lone "7" is already an int);
    # normalise everything back to the comma-separated string grammar.
    text = str(value).strip()
    if not text:
        raise FaultError(f"fault option {key} must not be empty")
    return [entry.strip() for entry in text.split(",") if entry.strip()]


@dataclass(frozen=True)
class FaultModel:
    """A canonical, hashable record of one machine's faults.

    All four fields normalise in ``__post_init__`` — deduped, sorted,
    pairs ordered ``a < b`` — so two models describing the same faults
    compare (and hash, and canonicalise) equal.
    """

    dead_zones: tuple[int, ...] = ()
    severed_edges: tuple[tuple[int, int], ...] = ()
    failed_links: tuple[tuple[int, int], ...] = ()
    entangler_eps: tuple[tuple[int, float], ...] = field(default=())

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "dead_zones", tuple(sorted({int(z) for z in self.dead_zones}))
        )
        for zone in self.dead_zones:
            if zone < 0:
                raise FaultError(f"dead zone id must be >= 0, got {zone}")
        for name in ("severed_edges", "failed_links"):
            pairs = set()
            for pair in getattr(self, name):
                a, b = int(pair[0]), int(pair[1])
                if a < 0 or b < 0:
                    raise FaultError(f"{name} ids must be >= 0, got {a}-{b}")
                if a == b:
                    raise FaultError(f"{name} pair {a}-{b} must join two ids")
                pairs.add((min(a, b), max(a, b)))
            object.__setattr__(self, name, tuple(sorted(pairs)))
        eps_by_module: dict[int, float] = {}
        for module, eps in self.entangler_eps:
            module, eps = int(module), float(eps)
            if module < 0:
                raise FaultError(f"entangler_eps module must be >= 0, got {module}")
            if not 0.0 < eps < 1.0:
                raise FaultError(
                    f"entangler eps for module {module} must be in (0, 1), got {eps}"
                )
            eps_by_module[module] = eps
        object.__setattr__(
            self, "entangler_eps", tuple(sorted(eps_by_module.items()))
        )

    # -- queries ---------------------------------------------------------

    @property
    def is_empty(self) -> bool:
        return not (
            self.dead_zones
            or self.severed_edges
            or self.failed_links
            or self.entangler_eps
        )

    @property
    def num_faults(self) -> int:
        """Total count of individual faulted resources."""
        return (
            len(self.dead_zones)
            + len(self.severed_edges)
            + len(self.failed_links)
            + len(self.entangler_eps)
        )

    def eps_by_module(self) -> dict[int, float]:
        """Per-module degraded-entangler infidelity (empty when pristine)."""
        return dict(self.entangler_eps)

    def blocks_link(self, module_a: int, module_b: int) -> bool:
        """Is the optical link between two modules failed?"""
        pair = (min(module_a, module_b), max(module_a, module_b))
        return pair in self.failed_links

    def severs_edge(self, zone_a: int, zone_b: int) -> bool:
        """Is the shuttle junction between two zones severed?"""
        pair = (min(zone_a, zone_b), max(zone_a, zone_b))
        return pair in self.severed_edges

    def describe(self) -> str:
        """One-line human summary, e.g. ``2 dead zones, 1 failed link``."""
        parts = []
        if self.dead_zones:
            parts.append(f"{len(self.dead_zones)} dead zone(s)")
        if self.severed_edges:
            parts.append(f"{len(self.severed_edges)} severed edge(s)")
        if self.failed_links:
            parts.append(f"{len(self.failed_links)} failed link(s)")
        if self.entangler_eps:
            parts.append(f"{len(self.entangler_eps)} degraded entangler(s)")
        return ", ".join(parts) if parts else "no faults"

    # -- machine validation ----------------------------------------------

    def validate_for(self, machine) -> None:
        """Raise :class:`FaultError` when a fault names a resource the
        machine does not have (unknown zone/module id, non-edge)."""
        zone_ids = {zone.zone_id for zone in machine.zones}
        modules = {zone.module_id for zone in machine.zones}
        for zone in self.dead_zones:
            if zone not in zone_ids:
                raise FaultError(
                    f"dead zone {zone} does not exist on {machine.describe()}"
                )
        for a, b in self.severed_edges:
            if a not in zone_ids or b not in zone_ids:
                raise FaultError(
                    f"severed edge {a}-{b} names a zone that does not exist "
                    f"on {machine.describe()}"
                )
            if b not in machine._adjacency.get(a, frozenset()):
                raise FaultError(
                    f"severed edge {a}-{b} is not a shuttle edge of "
                    f"{machine.describe()}"
                )
        for a, b in self.failed_links:
            if a not in modules or b not in modules:
                raise FaultError(
                    f"failed link {a}-{b} names a module that does not exist "
                    f"on {machine.describe()}"
                )
        for module, _eps in self.entangler_eps:
            if module not in modules:
                raise FaultError(
                    f"entangler_eps names module {module}, which does not "
                    f"exist on {machine.describe()}"
                )

    # -- lossless serialization ------------------------------------------

    def to_dict(self) -> dict:
        """JSON-safe payload (only non-empty fields are emitted)."""
        payload: dict = {}
        if self.dead_zones:
            payload["dead_zones"] = list(self.dead_zones)
        if self.severed_edges:
            payload["severed_edges"] = [list(pair) for pair in self.severed_edges]
        if self.failed_links:
            payload["failed_links"] = [list(pair) for pair in self.failed_links]
        if self.entangler_eps:
            payload["entangler_eps"] = [
                [module, eps] for module, eps in self.entangler_eps
            ]
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "FaultModel":
        unknown = sorted(set(payload) - set(FAULT_KEYS))
        if unknown:
            hint = suggest_key(unknown[0], FAULT_KEYS)
            raise FaultError(
                f"unknown fault field(s): {', '.join(unknown)}{hint} "
                f"(valid fields: {', '.join(FAULT_KEYS)})"
            )
        try:
            return cls(
                dead_zones=tuple(payload.get("dead_zones", ())),
                severed_edges=tuple(
                    tuple(pair) for pair in payload.get("severed_edges", ())
                ),
                failed_links=tuple(
                    tuple(pair) for pair in payload.get("failed_links", ())
                ),
                entangler_eps=tuple(
                    tuple(entry) for entry in payload.get("entangler_eps", ())
                ),
            )
        except (TypeError, IndexError):
            raise FaultError(
                "malformed fault payload: pairs must be two-element lists"
            ) from None

    # -- spec-string grammar ---------------------------------------------

    def to_options(self) -> dict[str, str]:
        """The canonical ``?key=value`` fragment values of this model."""
        options: dict[str, str] = {}
        if self.dead_zones:
            options["dead_zones"] = ",".join(str(z) for z in self.dead_zones)
        if self.severed_edges:
            options["severed_edges"] = ",".join(
                f"{a}-{b}" for a, b in self.severed_edges
            )
        if self.failed_links:
            options["failed_links"] = ",".join(
                f"{a}-{b}" for a, b in self.failed_links
            )
        if self.entangler_eps:
            options["entangler_eps"] = ",".join(
                f"{module}:{eps:g}" for module, eps in self.entangler_eps
            )
        return options

    @classmethod
    def from_options(cls, options: Mapping[str, Any]) -> "FaultModel":
        """Parse spec-query fault values (``dead_zones="3,7"`` etc.)."""
        unknown = sorted(set(options) - set(FAULT_KEYS))
        if unknown:
            hint = suggest_key(unknown[0], FAULT_KEYS)
            raise FaultError(
                f"unknown fault option(s): {', '.join(unknown)}{hint} "
                f"(valid fault options: {', '.join(FAULT_KEYS)})"
            )
        dead_zones: tuple[int, ...] = ()
        severed: tuple[tuple[int, int], ...] = ()
        links: tuple[tuple[int, int], ...] = ()
        eps: tuple[tuple[int, float], ...] = ()
        if "dead_zones" in options:
            dead_zones = tuple(
                _parse_int(entry, key="dead_zones")
                for entry in _split_entries(options["dead_zones"], key="dead_zones")
            )
        if "severed_edges" in options:
            severed = tuple(
                _parse_pair(entry, key="severed_edges", what="zone")
                for entry in _split_entries(
                    options["severed_edges"], key="severed_edges"
                )
            )
        if "failed_links" in options:
            links = tuple(
                _parse_pair(entry, key="failed_links", what="module")
                for entry in _split_entries(
                    options["failed_links"], key="failed_links"
                )
            )
        if "entangler_eps" in options:
            eps = tuple(
                _parse_eps(entry, key="entangler_eps")
                for entry in _split_entries(
                    options["entangler_eps"], key="entangler_eps"
                )
            )
        return cls(
            dead_zones=dead_zones,
            severed_edges=severed,
            failed_links=links,
            entangler_eps=eps,
        )


def split_fault_options(options: Mapping[str, Any]) -> tuple[dict, dict]:
    """Partition a parsed spec query into ``(fault options, the rest)``.

    The machine registry calls this before builder-option validation so
    fault keys are legal on *any* registered machine spec.
    """
    faults = {key: value for key, value in options.items() if key in FAULT_KEYS}
    rest = {key: value for key, value in options.items() if key not in FAULT_KEYS}
    return faults, rest


def parse_fault_options(options: Mapping[str, Any]) -> "FaultModel | None":
    """Fault options -> :class:`FaultModel`, or ``None`` when there are none."""
    if not options:
        return None
    model = FaultModel.from_options(options)
    return None if model.is_empty else model
