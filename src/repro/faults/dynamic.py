"""Mid-schedule fault events and recompile-from-checkpoint recovery.

The static pipeline assumes the machine it compiled for stays healthy
for the whole schedule.  A :class:`FaultEvent` breaks that assumption:
at ``at_us`` into an already-priced schedule, a set of resources fails
(a :class:`~repro.faults.model.FaultModel` becomes active).  Recovery
reuses the replay-once event ledger instead of re-simulating:

1. **Commit** — replay the pristine program once; every circuit gate
   whose timed event *finishes* before the fault instant stays valid
   (its pricing is untouched — faults are not retroactive).
2. **Residual** — the logical gates not yet complete form a residual
   circuit (logical qubits are fault-free state; only the hardware
   mapping is stale).
3. **Recompile** — the residual circuit is compiled from scratch against
   the *faulted* machine (the event's model merged over any faults the
   machine already carried), so placement/routing avoid the newly dead
   resources exactly like static faults.
4. **Splice** — combined makespan = fault instant + residual makespan;
   the difference vs the pristine makespan is the recovery overhead
   ``repro bench faults`` tracks.

When the workload no longer fits the surviving capacity the recompile
raises the same clear admission error as a static faulted compile —
surfaced here as :class:`RecoveryError`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from .model import FaultError, FaultModel

__all__ = ["FaultEvent", "RecoveryError", "RecoveryResult", "inject_fault"]


class RecoveryError(FaultError):
    """The residual workload cannot be recompiled on the faulted machine."""


@dataclass(frozen=True)
class FaultEvent:
    """Resources described by ``model`` fail at ``at_us`` into the run."""

    at_us: float
    model: FaultModel

    def __post_init__(self) -> None:
        if self.at_us < 0:
            raise FaultError(f"fault time must be >= 0 us, got {self.at_us}")
        if self.model.is_empty:
            raise FaultError("a FaultEvent needs a non-empty fault model")


@dataclass(frozen=True)
class RecoveryResult:
    """The outcome of recovering one schedule from one fault event."""

    fault_at_us: float
    pristine_makespan_us: float
    pristine_log10_fidelity: float
    committed_gates: int
    residual_gates: int
    residual_makespan_us: float
    combined_makespan_us: float
    combined_log10_fidelity: float

    @property
    def overhead_pct(self) -> float:
        """Recovery cost vs the pristine makespan, in percent."""
        if self.pristine_makespan_us <= 0:
            return 0.0
        return (
            (self.combined_makespan_us - self.pristine_makespan_us)
            / self.pristine_makespan_us
            * 100.0
        )

    def to_dict(self) -> dict:
        return {
            "fault_at_us": self.fault_at_us,
            "pristine_makespan_us": self.pristine_makespan_us,
            "pristine_log10_fidelity": self.pristine_log10_fidelity,
            "committed_gates": self.committed_gates,
            "residual_gates": self.residual_gates,
            "residual_makespan_us": self.residual_makespan_us,
            "combined_makespan_us": self.combined_makespan_us,
            "combined_log10_fidelity": self.combined_log10_fidelity,
            "overhead_pct": self.overhead_pct,
        }


def _merge_models(base: FaultModel | None, extra: FaultModel) -> FaultModel:
    """Union of two fault models; *extra*'s eps wins on shared modules."""
    if base is None or base.is_empty:
        return extra
    return FaultModel(
        dead_zones=base.dead_zones + extra.dead_zones,
        severed_edges=base.severed_edges + extra.severed_edges,
        failed_links=base.failed_links + extra.failed_links,
        entangler_eps=base.entangler_eps + extra.entangler_eps,
    )


def _faulted_machine(machine, model: FaultModel):
    """A fresh machine: *machine*'s architecture + *model* merged in."""
    from ..hardware import default_machine_registry

    merged = _merge_models(machine.fault_model, model)
    merged.validate_for(machine)
    arch = replace(machine.architecture(), faults=merged)
    return default_machine_registry().from_architecture(arch)


def committed_gate_indices(ledger, params, at_us: float) -> set[int]:
    """Circuit indices of gates whose timed event completes by *at_us*."""
    from ..sim.ops import FiberGateOp, GateOp

    operations = ledger.program.operations
    committed: set[int] = set()
    for event in ledger.events(params):
        if event.start_us + event.duration_us > at_us:
            continue
        op = operations[event.index]
        if isinstance(op, (GateOp, FiberGateOp)) and op.circuit_index >= 0:
            committed.add(op.circuit_index)
    return committed


def inject_fault(
    program,
    event: FaultEvent,
    *,
    compiler: str = "muss-ti",
    physics=None,
) -> RecoveryResult:
    """Recover *program* from *event*; returns the spliced metrics.

    Raises :class:`RecoveryError` when the residual circuit does not fit
    the faulted machine's surviving capacity.
    """
    from ..circuits import QuantumCircuit
    from ..core.state import RoutingError
    from ..physics import resolve_physics
    from ..pipeline import resolve_compiler
    from ..sim import replay

    params = resolve_physics(physics)
    ledger = replay(program)
    pristine = ledger.reprice(params)
    committed = committed_gate_indices(ledger, params, event.at_us)

    circuit = program.circuit
    residual = QuantumCircuit(circuit.num_qubits, name=f"{circuit.name}_residual")
    for index, gate in enumerate(circuit):
        if index not in committed:
            residual.append(gate)

    if not len(residual):
        # Every logical gate finished before the fault: nothing to redo.
        return RecoveryResult(
            fault_at_us=event.at_us,
            pristine_makespan_us=pristine.makespan_us,
            pristine_log10_fidelity=pristine.log10_fidelity,
            committed_gates=len(committed),
            residual_gates=0,
            residual_makespan_us=0.0,
            combined_makespan_us=pristine.makespan_us,
            combined_log10_fidelity=pristine.log10_fidelity,
        )

    machine = _faulted_machine(program.machine, event.model)
    try:
        residual_program = resolve_compiler(compiler).compile(residual, machine)
    except RoutingError as error:
        raise RecoveryError(
            f"cannot recover from fault at {event.at_us:g} us: residual "
            f"circuit ({len(residual)} gates) does not fit the surviving "
            f"capacity of {machine.describe()} ({error})"
        ) from None
    residual_report = replay(residual_program).reprice(params)
    return RecoveryResult(
        fault_at_us=event.at_us,
        pristine_makespan_us=pristine.makespan_us,
        pristine_log10_fidelity=pristine.log10_fidelity,
        committed_gates=len(committed),
        residual_gates=len(residual),
        residual_makespan_us=residual_report.makespan_us,
        combined_makespan_us=event.at_us + residual_report.makespan_us,
        combined_log10_fidelity=(
            pristine.log10_fidelity + residual_report.log10_fidelity
        ),
    )
