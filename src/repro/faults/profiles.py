"""Named fault profiles: machine-relative fault models by name.

A *fault profile* is a recipe, not a fixed fault list: ``dead-zones-2``
means "kill two storage zones" on whatever machine it is applied to, so
the same profile name sweeps across machine sizes in ``repro bench
faults``.  Profiles pick resources deterministically (highest-id modules
first for dead zones, lowest-id module pairs for failed links), so a
profile on a given machine always yields the same :class:`FaultModel` —
sweep cells stay cacheable and bench cells reproducible.

Profiles intentionally degrade, never destroy: dead zones are storage
zones (gate/optical capability survives) and failed links leave a
connected clique of modules, so a workload that fits the surviving
capacity still compiles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

from .model import FaultError, FaultModel

__all__ = [
    "FaultProfile",
    "available_fault_profiles",
    "build_fault_profile",
    "describe_fault_profiles",
    "register_fault_profile",
]


@dataclass(frozen=True)
class FaultProfile:
    """One registered profile: a machine -> :class:`FaultModel` recipe."""

    name: str
    summary: str
    builder: Callable[..., FaultModel]

    def build(self, machine) -> FaultModel:
        model = self.builder(machine)
        model.validate_for(machine)
        return model


_PROFILES: dict[str, FaultProfile] = {}


def register_fault_profile(
    name: str, *, summary: str = ""
) -> Callable[[Callable[..., FaultModel]], Callable[..., FaultModel]]:
    """Decorator registering a machine -> :class:`FaultModel` builder."""

    def decorate(builder: Callable[..., FaultModel]):
        if name in _PROFILES:
            raise ValueError(f"fault profile {name!r} is already registered")
        _PROFILES[name] = FaultProfile(name=name, summary=summary, builder=builder)
        return builder

    return decorate


def available_fault_profiles() -> list[str]:
    """Sorted names of every registered fault profile."""
    return sorted(_PROFILES)


def describe_fault_profiles() -> str:
    """One ``name  summary`` line per profile, sorted by name."""
    width = max((len(name) for name in _PROFILES), default=0)
    return "\n".join(
        f"{name:{width}s}  {_PROFILES[name].summary}" for name in sorted(_PROFILES)
    )


def build_fault_profile(name: str, machine) -> FaultModel:
    """Apply the named profile to *machine* (validated against it)."""
    try:
        profile = _PROFILES[name]
    except KeyError:
        raise FaultError(
            f"unknown fault profile {name!r} "
            f"(want one of {', '.join(available_fault_profiles())})"
        ) from None
    return profile.build(machine)


# ---------------------------------------------------------------------------
# Deterministic resource pickers
# ---------------------------------------------------------------------------


def _modules(machine) -> list[int]:
    return sorted({zone.module_id for zone in machine.zones})


def _storage_zones_by_module(machine) -> dict[int, list[int]]:
    by_module: dict[int, list[int]] = {}
    for zone in machine.zones:
        if not zone.kind.allows_gates:  # storage zones: level 0, no gates
            by_module.setdefault(zone.module_id, []).append(zone.zone_id)
    return by_module


def _pick_dead_zones(machine, count: int) -> tuple[int, ...]:
    """*count* storage zones, one per module, highest-id modules first.

    Spreading the deaths across modules (instead of gutting one module)
    keeps every module schedulable while still shrinking capacity.
    """
    by_module = _storage_zones_by_module(machine)
    picked: list[int] = []
    rounds = 0
    while len(picked) < count:
        progressed = False
        for module in sorted(by_module, reverse=True):
            zones = sorted(by_module[module], reverse=True)
            if rounds < len(zones):
                picked.append(zones[rounds])
                progressed = True
                if len(picked) == count:
                    break
        if not progressed:
            raise FaultError(
                f"profile needs {count} storage zone(s) to kill but "
                f"{machine.describe()} has only {len(picked)}"
            )
        rounds += 1
    return tuple(picked)


def _pick_failed_links(machine, count: int) -> tuple[tuple[int, int], ...]:
    """*count* disjoint module pairs, lowest ids first (0-1, 2-3, ...).

    Disjoint pairs leave the even-id modules as a mutually-linked clique,
    so placement always has somewhere to put the workload.
    """
    modules = _modules(machine)
    if len(modules) < 2 * count:
        raise FaultError(
            f"profile needs {count} module pair(s) to sever but "
            f"{machine.describe()} has {len(modules)} module(s)"
        )
    return tuple(
        (modules[2 * index], modules[2 * index + 1]) for index in range(count)
    )


def _pick_degraded(machine, count: int, eps: float) -> tuple[tuple[int, float], ...]:
    modules = _modules(machine)
    if len(modules) < count:
        raise FaultError(
            f"profile needs {count} module(s) to degrade but "
            f"{machine.describe()} has {len(modules)}"
        )
    return tuple((module, eps) for module in modules[:count])


def _register_counted(
    kind: str, counts: Iterable[int], build: Callable[..., FaultModel], what: str
) -> None:
    for count in counts:
        name = f"{kind}-{count}"
        _PROFILES[name] = FaultProfile(
            name=name,
            summary=f"{what} (x{count})",
            builder=(lambda machine, _count=count: build(machine, _count)),
        )


_register_counted(
    "dead-zones",
    (1, 2, 4),
    lambda machine, count: FaultModel(dead_zones=_pick_dead_zones(machine, count)),
    "kill storage zones, highest-id modules first",
)

_register_counted(
    "links",
    (1, 2),
    lambda machine, count: FaultModel(
        failed_links=_pick_failed_links(machine, count)
    ),
    "fail optical links between disjoint module pairs",
)

_register_counted(
    "degraded",
    (1, 2),
    lambda machine, count: FaultModel(
        entangler_eps=_pick_degraded(machine, count, 0.02)
    ),
    "degrade module entanglers to eps=0.02",
)


@register_fault_profile(
    "mixed-1",
    summary="one dead storage zone + one failed link + one degraded entangler",
)
def _build_mixed(machine) -> FaultModel:
    modules = _modules(machine)
    if len(modules) < 3:
        raise FaultError(
            f"profile mixed-1 needs >= 3 modules, {machine.describe()} has "
            f"{len(modules)}"
        )
    # Degrade the last module's entangler: the failed 0-1 link removes
    # module 1 from the placement clique, so the eps must land on a
    # module that still does fiber work for the degradation to price in.
    return FaultModel(
        dead_zones=_pick_dead_zones(machine, 1),
        failed_links=_pick_failed_links(machine, 1),
        entangler_eps=((modules[-1], 0.02),),
    )
