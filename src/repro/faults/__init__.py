"""Fault-aware scheduling subsystem: degraded hardware as first-class data.

* :mod:`repro.faults.model` — the declarative :class:`FaultModel` (dead
  zones, severed shuttle edges, failed optical links, degraded
  entanglers) with its spec-string grammar and lossless serialization.
* :mod:`repro.faults.profiles` — named machine-relative fault profiles
  (``dead-zones-2``, ``links-1``, ...) for sweeps and the CLI.
* :mod:`repro.faults.dynamic` — mid-schedule :class:`FaultEvent`s with
  recompile-from-checkpoint recovery over the event ledger.

Only :mod:`~repro.faults.model` is imported eagerly: the hardware layer
imports it while building machines, so the profile/dynamic modules
(which import the hardware layer back) load lazily on first attribute
access.
"""

from __future__ import annotations

from .model import (
    FAULT_KEYS,
    FaultError,
    FaultModel,
    parse_fault_options,
    split_fault_options,
)

__all__ = [
    "FAULT_KEYS",
    "FaultError",
    "FaultEvent",
    "FaultModel",
    "RecoveryError",
    "RecoveryResult",
    "available_fault_profiles",
    "build_fault_profile",
    "describe_fault_profiles",
    "inject_fault",
    "parse_fault_options",
    "register_fault_profile",
    "split_fault_options",
]

_LAZY = {
    "FaultEvent": "dynamic",
    "RecoveryError": "dynamic",
    "RecoveryResult": "dynamic",
    "inject_fault": "dynamic",
    "available_fault_profiles": "profiles",
    "build_fault_profile": "profiles",
    "describe_fault_profiles": "profiles",
    "register_fault_profile": "profiles",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    module = importlib.import_module(f".{module_name}", __name__)
    value = getattr(module, name)
    globals()[name] = value
    return value
