"""Multi-programming: co-schedule N independent circuits on one machine.

The subsystem behind ``repro fleet`` (ROADMAP item 2): a region
allocator that carves a registered machine into disjoint tenant regions
(:mod:`~repro.multiprog.regions`), pluggable admission/packing policies
(:mod:`~repro.multiprog.policies`), a batch scheduler that compiles each
tenant against its region through the unchanged MUSS-TI pipeline and
interleaves the results into one machine-wide program with per-tenant
ledger slices (:mod:`~repro.multiprog.batch`), and an event-driven
queueing simulator over synthetic multi-tenant arrival streams
(:mod:`~repro.multiprog.queueing`).
"""

from .batch import (
    BatchJob,
    BatchSchedule,
    Placement,
    pack_batch,
    slice_ledger,
)
from .policies import (
    DEFAULT_POLICIES,
    POLICIES,
    Policy,
    available_policies,
    jain_index,
    resolve_policy,
)
from .queueing import (
    DEFAULT_TENANTS,
    FleetSimConfig,
    TenantSpec,
    render_fleet,
    run_fleet_sim,
)
from .regions import (
    Region,
    RegionAllocator,
    RegionError,
    region_architecture,
)

__all__ = [
    "BatchJob",
    "BatchSchedule",
    "DEFAULT_POLICIES",
    "DEFAULT_TENANTS",
    "FleetSimConfig",
    "POLICIES",
    "Placement",
    "Policy",
    "Region",
    "RegionAllocator",
    "RegionError",
    "TenantSpec",
    "available_policies",
    "jain_index",
    "pack_batch",
    "region_architecture",
    "render_fleet",
    "resolve_policy",
    "run_fleet_sim",
    "slice_ledger",
]
