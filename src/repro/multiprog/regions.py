"""Region allocator: carve one machine into disjoint tenant regions.

A *region* is a subset of a machine's hardware — whole modules on
multi-module machines (EML, star: fiber links are all-to-all, so any
module set works), or a connected set of traps on single-module machines
(grids, rings, chains: shuttling needs adjacency).  Each region is
exposed as a sub-:class:`~repro.hardware.topology.ArchitectureSpec`, so
the existing compilation pipeline builds the region into a machine and
compiles a tenant's circuit against it *unchanged* — multi-programming
is a layer over the compiler, not a fork of it.

Two derivation rules keep regions faithful to the parent hardware:

* a region covering the **whole** machine reuses the parent's own
  architecture verbatim (same kind, same builder options), so a
  single-tenant batch compiles on hardware byte-identical to the direct
  path — the differential guarantee the test suite enforces;
* a module region of an ``eml`` machine keeps kind ``"eml"`` with the
  parent's builder options and the selected module count (EML modules
  are homogeneous), so the sub-machine rebuilds through the registered
  builder as a real :class:`~repro.hardware.eml.EMLQCCDMachine`; any
  other carve lowers as kind ``"custom"``, carrying the parent's
  ``module_limit`` so per-module ion budgets still bind.

The allocator itself is a free-list over *units* (modules or zones):
``allocate(num_qubits)`` picks the lowest-id units whose capacity covers
the request (BFS-connected for zone granularity), ``release`` returns
them.  Capacity of a module unit is ``min(trap space, module qubit
limit)`` — the same budget placement respects.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from functools import cached_property

from ..faults.model import FaultModel
from ..hardware import Machine, default_machine_registry
from ..hardware.topology import ArchitectureSpec, ZoneSpec

#: Granularity of the carve: whole modules (fiber-linked machines) or
#: connected zone sets (single-module shuttle topologies).
GRANULARITIES = ("module", "zone")


class RegionError(ValueError):
    """The requested region cannot be carved from the free hardware."""


def _module_capacity(machine: Machine, module_id: int) -> int:
    """Usable qubit budget of one module: trap space capped by the
    machine's per-module ion limit (when it has one)."""
    trap_space = sum(zone.capacity for zone in machine.zones_in_module(module_id))
    limit = getattr(machine, "module_qubit_limit", None)
    if limit is not None:
        return min(trap_space, limit)
    return trap_space


def _carry_options(machine: Machine) -> tuple[tuple[str, object], ...]:
    """Parent options a ``custom`` sub-architecture must keep.

    ``module_limit`` is the one option the generic lowering interprets
    (it becomes ``module_qubit_limit``); everything else describes the
    parent's full shape and would be wrong on a fragment.
    """
    limit = getattr(machine, "module_qubit_limit", None)
    return (("module_limit", limit),) if limit is not None else ()


def _region_faults(
    machine: Machine,
    local_of: dict[int, int],
    module_rank: dict[int, int],
) -> FaultModel | None:
    """The parent's faults, remapped into a region's local frame.

    Dead zones and failed links never reach here — the allocator excludes
    dead units and link-blocked module pairs up front — but severed
    shuttle edges inside a kept unit and degraded entanglers on kept
    modules must ride along so the tenant's compile prices and routes on
    the hardware it actually has.
    """
    model = machine.fault_model
    if model is None:
        return None
    severed = tuple(
        (local_of[a], local_of[b])
        for a, b in model.severed_edges
        if a in local_of and b in local_of
    )
    eps = tuple(
        (module_rank[module], value)
        for module, value in model.entangler_eps
        if module in module_rank
    )
    if not severed and not eps:
        return None
    return FaultModel(severed_edges=severed, entangler_eps=eps)


def region_architecture(
    machine: Machine, granularity: str, units: tuple[int, ...]
) -> tuple[ArchitectureSpec, tuple[int, ...]]:
    """The sub-architecture of *units* plus its parent zone ids.

    Returns ``(arch, zone_ids)`` where ``zone_ids[i]`` is the parent
    zone backing the sub-architecture's zone ``i`` (parent zone-id
    order, so the mapping is monotone).
    """
    if granularity not in GRANULARITIES:
        raise RegionError(f"unknown granularity {granularity!r}")
    if not units:
        raise RegionError("a region needs at least one unit")
    if granularity == "module":
        selected = set(units)
        zone_ids = tuple(
            zone.zone_id for zone in machine.zones if zone.module_id in selected
        )
    else:
        zone_ids = tuple(sorted(set(units)))
        for zone_id in zone_ids:
            machine.zone(zone_id)  # raises IndexError on bad ids
    if zone_ids == tuple(range(machine.num_zones)):
        # Full coverage: the region *is* the machine — reuse its own
        # architecture (kind and builder options included) so the
        # sub-machine rebuilds type- and byte-identical to the parent.
        return machine.architecture(), zone_ids

    local_of = {zone_id: local for local, zone_id in enumerate(zone_ids)}
    module_rank: dict[int, int] = {}
    rows = []
    for zone_id in zone_ids:
        zone = machine.zone(zone_id)
        rank = module_rank.setdefault(zone.module_id, len(module_rank))
        rows.append(ZoneSpec(module_id=rank, kind=zone.kind, capacity=zone.capacity))
    edges = tuple(
        (local_of[a], local_of[b])
        for a in zone_ids
        for b in machine.neighbours(a)
        if a < b and b in local_of
    )
    faults = _region_faults(machine, local_of, module_rank)
    if granularity == "module" and machine._spec_kind == "eml":
        # EML modules are homogeneous, so a module subset is itself an
        # EML machine: keep the registered kind (the registry
        # cross-checks the zone table against the builder's output).
        options = dict(machine._spec_options or {})
        options["modules"] = len(module_rank)
        return (
            ArchitectureSpec(
                kind="eml",
                zones=tuple(rows),
                edges=edges,
                options=tuple(sorted(options.items())),
                faults=faults,
            ),
            zone_ids,
        )
    return (
        ArchitectureSpec(
            kind="custom",
            zones=tuple(rows),
            edges=edges,
            options=_carry_options(machine),
            faults=faults,
        ),
        zone_ids,
    )


@dataclass(frozen=True)
class Region:
    """One tenant's slice of a machine.

    ``zone_ids[i]`` is the parent zone behind the region's local zone
    ``i`` — the translation :func:`repro.multiprog.batch.pack_batch`
    uses to lift a region-frame program into the machine frame.
    """

    region_id: int
    granularity: str
    units: tuple[int, ...]
    zone_ids: tuple[int, ...]
    arch: ArchitectureSpec
    capacity: int

    @property
    def zone_map(self) -> dict[int, int]:
        """Local zone id -> parent zone id."""
        return dict(enumerate(self.zone_ids))

    @cached_property
    def _machine(self) -> Machine:
        return default_machine_registry().from_architecture(self.arch)

    def machine(self) -> Machine:
        """Build (once) the region as a runnable machine."""
        return self._machine

    def machine_token(self) -> str:
        """Stable identity of the region's hardware: the canonical
        machine spec when the sub-architecture is registry-buildable,
        otherwise a content digest of the architecture payload."""
        spec = self.machine().spec
        if spec is not None:
            return spec
        payload = json.dumps(self.arch.to_dict(), sort_keys=True)
        return "custom:" + hashlib.sha256(payload.encode()).hexdigest()[:16]

    def describe(self) -> str:
        unit_kind = "module" if self.granularity == "module" else "zone"
        ids = ",".join(str(unit) for unit in self.units)
        return (
            f"region {self.region_id}: {unit_kind}s [{ids}], "
            f"{len(self.zone_ids)} zones, capacity {self.capacity}"
        )


@dataclass
class RegionAllocator:
    """Free-list allocator of machine units (modules or zones)."""

    machine: Machine
    granularity: str = ""
    _free: set = field(default_factory=set, repr=False)
    _next_id: int = 0

    def __post_init__(self) -> None:
        if not self.granularity:
            self.granularity = "module" if self.machine.num_modules > 1 else "zone"
        if self.granularity not in GRANULARITIES:
            raise RegionError(f"unknown granularity {self.granularity!r}")
        self._free = set(self.units)

    @property
    def units(self) -> tuple[int, ...]:
        """Allocatable units: dead hardware is never handed to a tenant.

        At module granularity a module containing *any* dead zone is
        withheld entirely (its surviving zones are real, but carving them
        out would break the homogeneous-module invariant EML regions rely
        on); at zone granularity only the dead zones themselves vanish.
        """
        model = self.machine.fault_model
        if self.granularity == "module":
            all_units = range(self.machine.num_modules)
            if model is None or not model.dead_zones:
                return tuple(all_units)
            dead_modules = {
                self.machine.zone(zone_id).module_id
                for zone_id in model.dead_zones
            }
            return tuple(m for m in all_units if m not in dead_modules)
        all_zones = range(self.machine.num_zones)
        if model is None or not model.dead_zones:
            return tuple(all_zones)
        dead = set(model.dead_zones)
        return tuple(z for z in all_zones if z not in dead)

    def unit_capacity(self, unit: int) -> int:
        if self.granularity == "module":
            return _module_capacity(self.machine, unit)
        return self.machine.zone(unit).capacity

    @property
    def total_capacity(self) -> int:
        return sum(self.unit_capacity(unit) for unit in self.units)

    @property
    def free_units(self) -> tuple[int, ...]:
        return tuple(sorted(self._free))

    @property
    def free_capacity(self) -> int:
        return sum(self.unit_capacity(unit) for unit in self._free)

    def _effective_capacity(self, zone_ids) -> int:
        """Placeable qubits of a zone set: per-module trap space capped
        at the module's qubit limit — the same hard bound placement
        enforces, so an admitted region can always be compiled."""
        per_module: dict[int, int] = {}
        for zone_id in zone_ids:
            zone = self.machine.zone(zone_id)
            per_module[zone.module_id] = (
                per_module.get(zone.module_id, 0) + zone.capacity
            )
        limit = getattr(self.machine, "module_qubit_limit", None)
        if limit is None:
            return sum(per_module.values())
        return sum(min(space, limit) for space in per_module.values())

    # -- planning --------------------------------------------------------

    def _plan(self, num_qubits: int, free: set) -> list[int] | None:
        """Lowest-id units out of *free* covering *num_qubits*, or
        ``None``.  Zone granularity additionally requires the picked
        set to be shuttle-connected (BFS from each candidate seed)."""
        if num_qubits < 1:
            raise RegionError(f"a region must hold at least one qubit, got {num_qubits}")
        model = self.machine.fault_model
        if self.granularity == "module":
            picked: list[int] = []
            capacity = 0
            for unit in sorted(free):
                if model is not None and any(
                    model.blocks_link(unit, member) for member in picked
                ):
                    continue  # keep the region a live fiber clique
                picked.append(unit)
                capacity += self.unit_capacity(unit)
                if capacity >= num_qubits:
                    return picked
            return None
        live_adjacency = self.machine.live_adjacency()
        for seed in sorted(free):
            picked = [seed]
            capacity = self._effective_capacity(picked)
            seen = {seed}
            frontier = [seed]
            while capacity < num_qubits and frontier:
                # Expand to the lowest-id unvisited free neighbour of the
                # picked set — deterministic, and keeps the region compact.
                candidates = sorted(
                    neighbour
                    for zone_id in frontier
                    for neighbour in live_adjacency[zone_id]
                    if neighbour in free and neighbour not in seen
                )
                if not candidates:
                    break
                chosen = candidates[0]
                seen.add(chosen)
                picked.append(chosen)
                frontier.append(chosen)
                capacity = self._effective_capacity(picked)
            if capacity >= num_qubits:
                return sorted(picked)
        return None

    def units_for(self, num_qubits: int) -> int:
        """How many units a request needs on an *empty* machine.

        Raises :class:`RegionError` when the whole machine is too small.
        """
        plan = self._plan(num_qubits, set(self.units))
        if plan is None:
            raise RegionError(
                f"{num_qubits} qubits exceed the machine "
                f"({self.total_capacity} across {len(self.units)} "
                f"{self.granularity} units)"
            )
        return len(plan)

    def fits(self, num_qubits: int) -> bool:
        """Whether a request can be carved from the currently free units."""
        return self._plan(num_qubits, self._free) is not None

    # -- allocation ------------------------------------------------------

    def allocate(self, num_qubits: int) -> Region:
        plan = self._plan(num_qubits, self._free)
        if plan is None:
            raise RegionError(
                f"cannot carve {num_qubits} qubits: "
                f"{self.free_capacity} free across {len(self._free)} of "
                f"{len(self.units)} {self.granularity} units"
            )
        units = tuple(plan)
        arch, zone_ids = region_architecture(self.machine, self.granularity, units)
        self._free.difference_update(units)
        region = Region(
            region_id=self._next_id,
            granularity=self.granularity,
            units=units,
            zone_ids=zone_ids,
            arch=arch,
            capacity=sum(self.unit_capacity(unit) for unit in units),
        )
        self._next_id += 1
        return region

    def release(self, region: Region) -> None:
        if region.granularity != self.granularity:
            raise RegionError(
                f"region granularity {region.granularity!r} does not match "
                f"allocator granularity {self.granularity!r}"
            )
        already_free = set(region.units) & self._free
        if already_free:
            raise RegionError(f"double release of units {sorted(already_free)}")
        unknown = set(region.units) - set(self.units)
        if unknown:
            raise RegionError(f"region units {sorted(unknown)} are not on this machine")
        self._free.update(region.units)

    def reset(self) -> None:
        """Free every unit (regions handed out become invalid)."""
        self._free = set(self.units)
