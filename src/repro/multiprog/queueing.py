"""Queueing simulator: a hundred thousand jobs against the scheduler.

``repro fleet sim`` answers the capacity-planning question behind
ROADMAP item 2: *under a realistic multi-tenant arrival stream, how do
the admission policies trade throughput, queue wait, and fairness on
one machine?*  It is an event-driven simulation over region **units**
(modules on EML machines — interchangeable thanks to all-to-all fiber —
or zones on single-module machines):

1. every tenant's workload is compiled **once** against the region its
   qubit count actually needs, through the real MUSS-TI pipeline; the
   region program's priced makespan becomes the job type's service
   time.  Compiles are memoised on disk keyed by
   :attr:`repro.serve.jobs.Job.key` (content hash of the circuit plus
   canonical specs), so a 100k-job sweep costs a handful of compiles —
   or zero on a warm cache;
2. one shared arrival trace (Poisson or bursty, seeded) is replayed
   against every policy, so runs differ only in policy decisions;
3. jobs queue until the policy admits them into free units, hold the
   units for their service time, then release them.

Reported per policy: throughput (jobs per second of simulated time),
machine utilization (busy unit-time over available unit-time), p50/p99
queue wait, and Jain's fairness index over weight-normalised attained
service.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from random import Random

from ..bench.cache import ResultCache
from ..hardware import resolve_machine
from ..pipeline.facade import compile as compile_circuit
from ..serve.jobs import Job, circuit_fingerprint
from ..sim.events import replay, reprice
from ..workloads import get_benchmark
from .policies import DEFAULT_POLICIES, DEFAULT_WINDOW, jain_index, resolve_policy
from .regions import RegionAllocator

#: Cache experiment file holding the fleet service-time compiles.
FLEET_EXPERIMENT = "fleet"

#: Supported arrival processes.
ARRIVALS = ("poisson", "bursty")


@dataclass(frozen=True)
class TenantSpec:
    """One tenant of the synthetic mix.

    ``share`` is the relative probability an arriving job belongs to
    this tenant; shares are normalised over the mix.
    """

    tenant: str
    workload: str
    weight: float = 1.0
    priority: int = 0
    share: float = 1.0


#: Default mix: small interactive tenants (GHZ/QFT/QAOA), a
#: double-weight BV batch tenant, and a large high-priority GHZ tenant
#: whose jobs span multiple modules on the default machine.
DEFAULT_TENANTS: tuple[TenantSpec, ...] = (
    TenantSpec("alice", "GHZ_n16", share=0.30),
    TenantSpec("bob", "QFT_n16", share=0.25),
    TenantSpec("carol", "BV_n32", weight=2.0, priority=1, share=0.20),
    TenantSpec("dave", "QAOA_n16", share=0.15),
    TenantSpec("erin", "GHZ_n48", priority=2, share=0.10),
)


@dataclass
class FleetSimConfig:
    """Everything one ``repro fleet sim`` run depends on."""

    machine: str = "eml:16:2"
    machine_qubits: int = 128
    jobs: int = 100_000
    arrival: str = "poisson"
    load: float = 0.8
    seed: int = 7
    policies: tuple[str, ...] = DEFAULT_POLICIES
    tenants: tuple[TenantSpec, ...] = DEFAULT_TENANTS
    window: int = DEFAULT_WINDOW
    physics: str = "table1"
    compiler: str = "muss-ti"
    cache_dir: str | None = None
    use_cache: bool = True


@dataclass(frozen=True)
class _JobType:
    """One tenant's job class with its measured resource profile."""

    spec: TenantSpec
    qubits: int
    units: int
    service_us: float


class _QueuedJob:
    """A waiting job, shaped the way admission policies expect
    (``tenant`` / ``priority`` / ``weight`` / ``qubits``)."""

    __slots__ = (
        "tenant", "priority", "weight", "qubits", "units",
        "service_us", "arrival_us",
    )

    def __init__(self, job_type: _JobType, arrival_us: float) -> None:
        self.tenant = job_type.spec.tenant
        self.priority = job_type.spec.priority
        self.weight = job_type.spec.weight
        self.qubits = job_type.qubits
        self.units = job_type.units
        self.service_us = job_type.service_us
        self.arrival_us = arrival_us


def _measure_job_types(config: FleetSimConfig, machine) -> list[_JobType]:
    """Compile every tenant workload against its region once (cached)."""
    cache = ResultCache(config.cache_dir) if config.use_cache else None
    job_types: list[_JobType] = []
    dirty = False
    for spec in config.tenants:
        circuit = get_benchmark(spec.workload)
        allocator = RegionAllocator(machine)
        units = allocator.units_for(circuit.num_qubits)
        region = allocator.allocate(circuit.num_qubits)
        key = Job(
            kind="compile",
            workload=spec.workload,
            machine=region.machine_token(),
            compiler=config.compiler,
            physics=config.physics,
            circuit_hash=circuit_fingerprint(circuit),
        ).key
        entry = cache.get(FLEET_EXPERIMENT, key) if cache is not None else None
        if entry is not None:
            result = entry["result"]
        else:
            program = compile_circuit(
                circuit, region.machine(), config.compiler
            ).program
            report = reprice(replay(program), config.physics)
            result = {
                "makespan_us": report.makespan_us,
                "qubits": circuit.num_qubits,
                "units": units,
            }
            if cache is not None:
                cache.put(FLEET_EXPERIMENT, key, result, report.compile_time_s)
                dirty = True
        job_types.append(
            _JobType(
                spec=spec,
                qubits=int(result["qubits"]),
                units=int(result["units"]),
                service_us=float(result["makespan_us"]),
            )
        )
    if cache is not None and dirty:
        cache.flush()
    return job_types


def _normalised_shares(job_types: list[_JobType]) -> list[float]:
    total = sum(job_type.spec.share for job_type in job_types)
    if total <= 0.0:
        raise ValueError("tenant shares must sum to a positive value")
    return [job_type.spec.share / total for job_type in job_types]


def _arrival_trace(
    config: FleetSimConfig, job_types: list[_JobType], total_units: int
) -> list[tuple[float, int]]:
    """The shared ``(arrival_us, type index)`` trace all policies replay.

    The interarrival mean is set so the *offered load* — arriving
    unit-time per available unit-time — equals ``config.load``.  The
    bursty process keeps the same average rate but concentrates it:
    roughly one gap in eight is a long lull, the rest arrive nearly
    back-to-back.
    """
    if config.arrival not in ARRIVALS:
        raise ValueError(
            f"unknown arrival process {config.arrival!r} (want one of {ARRIVALS})"
        )
    if config.load <= 0.0:
        raise ValueError(f"load must be positive, got {config.load}")
    shares = _normalised_shares(job_types)
    mean_unit_time = sum(
        share * job_type.units * job_type.service_us
        for share, job_type in zip(shares, job_types)
    )
    mean_gap = mean_unit_time / (config.load * total_units)

    cumulative: list[float] = []
    running = 0.0
    for share in shares:
        running += share
        cumulative.append(running)
    cumulative[-1] = 1.0

    rng = Random(config.seed)
    trace: list[tuple[float, int]] = []
    now = 0.0
    for _ in range(config.jobs):
        if config.arrival == "poisson":
            gap = rng.expovariate(1.0 / mean_gap)
        elif rng.random() < 0.125:
            gap = rng.expovariate(1.0 / (7.2 * mean_gap))
        else:
            gap = rng.expovariate(1.0 / (0.1 * mean_gap))
        now += gap
        draw = rng.random()
        type_index = 0
        while cumulative[type_index] < draw:
            type_index += 1
        trace.append((now, type_index))
    return trace


def _percentile(sorted_values: list[float], fraction: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(
        len(sorted_values) - 1, int(round(fraction * (len(sorted_values) - 1)))
    )
    return sorted_values[index]


def _simulate(
    policy, jobs: list[_QueuedJob], total_units: int, tenants: list[TenantSpec]
) -> dict:
    """Replay one arrival trace under one policy; returns its metrics."""
    free = total_units
    queue: list[_QueuedJob] = []
    completions: list[tuple[float, int, int]] = []  # (end_us, seq, units)
    waits_us: list[float] = []
    served: dict[str, float] = {}
    busy_unit_time = 0.0
    completed = 0
    dropped = 0
    seq = 0
    now = 0.0
    pointer = 0

    def fits(entry: _QueuedJob) -> bool:
        return entry.units <= free

    def admit() -> None:
        nonlocal free, busy_unit_time, seq
        while queue:
            index = policy.select(queue, fits)
            if index is None:
                return
            job = queue.pop(index)
            waits_us.append(now - job.arrival_us)
            free -= job.units
            heapq.heappush(completions, (now + job.service_us, seq, job.units))
            seq += 1
            service = job.units * job.service_us
            busy_unit_time += service
            served[job.tenant] = served.get(job.tenant, 0.0) + service
            policy.record_service(job.tenant, service, job.weight)

    while pointer < len(jobs) or completions:
        next_arrival = jobs[pointer].arrival_us if pointer < len(jobs) else math.inf
        next_completion = completions[0][0] if completions else math.inf
        if next_arrival <= next_completion:
            now = next_arrival
            job = jobs[pointer]
            pointer += 1
            if job.units > total_units:
                dropped += 1  # can never fit even an idle machine
            else:
                queue.append(job)
        else:
            now = next_completion
            _, _, units = heapq.heappop(completions)
            free += units
            completed += 1
        admit()

    span_us = max(now, 1e-9)
    waits_us.sort()
    fairness = jain_index(
        [served.get(spec.tenant, 0.0) / spec.weight for spec in tenants]
    )
    return {
        "completed": completed,
        "dropped": dropped,
        "throughput_jps": completed / (span_us / 1e6),
        "utilization": busy_unit_time / (total_units * span_us),
        "p50_wait_ms": _percentile(waits_us, 0.50) / 1000.0,
        "p99_wait_ms": _percentile(waits_us, 0.99) / 1000.0,
        "jain": fairness,
        "span_s": span_us / 1e6,
    }


def run_fleet_sim(config: FleetSimConfig) -> dict:
    """The full simulation: measure, trace, replay under every policy."""
    if config.jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {config.jobs}")
    machine = resolve_machine(config.machine, config.machine_qubits)
    job_types = _measure_job_types(config, machine)
    allocator = RegionAllocator(machine)
    total_units = len(allocator.units)

    trace = _arrival_trace(config, job_types, total_units)
    jobs = [_QueuedJob(job_types[index], arrival) for arrival, index in trace]
    shares = _normalised_shares(job_types)

    policies = {}
    for name in config.policies:
        policy = resolve_policy(name, window=config.window)
        policies[name] = _simulate(policy, jobs, total_units, list(config.tenants))

    return {
        "machine": machine.spec or config.machine,
        "machine_qubits": config.machine_qubits,
        "granularity": allocator.granularity,
        "total_units": total_units,
        "jobs": config.jobs,
        "arrival": config.arrival,
        "load": config.load,
        "seed": config.seed,
        "tenants": [
            {
                "tenant": job_type.spec.tenant,
                "workload": job_type.spec.workload,
                "weight": job_type.spec.weight,
                "priority": job_type.spec.priority,
                "share": share,
                "qubits": job_type.qubits,
                "units": job_type.units,
                "service_us": job_type.service_us,
            }
            for job_type, share in zip(job_types, shares)
        ],
        "policies": policies,
    }


def render_fleet(result: dict) -> str:
    """Fixed-width per-policy summary of one simulation result."""
    from ..analysis.tables import render_table

    headers = [
        "policy", "completed", "dropped", "jobs/s", "util",
        "p50 wait ms", "p99 wait ms", "jain",
    ]
    body = []
    for name, metrics in result["policies"].items():
        body.append([
            name,
            str(metrics["completed"]),
            str(metrics["dropped"]),
            f"{metrics['throughput_jps']:.1f}",
            f"{metrics['utilization']:.3f}",
            f"{metrics['p50_wait_ms']:.3f}",
            f"{metrics['p99_wait_ms']:.3f}",
            f"{metrics['jain']:.4f}",
        ])
    title = (
        f"fleet sim: {result['jobs']} jobs on {result['machine']} "
        f"({result['total_units']} {result['granularity']} units, "
        f"{result['arrival']} arrivals, load {result['load']:g})"
    )
    return render_table(headers, body, title=title)
