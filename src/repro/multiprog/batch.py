"""Batch scheduler: pack N independent circuits onto one machine.

:func:`pack_batch` runs one admission round: a policy (see
:mod:`repro.multiprog.policies`) picks queued jobs, the
:class:`~repro.multiprog.regions.RegionAllocator` carves each admitted
job a region, and the job's circuit is compiled against the region's
sub-machine through the ordinary :func:`repro.compile` front door — the
MUSS-TI pipeline neither knows nor cares that its machine is a slice of
a bigger one.  The per-region programs are then lifted into the machine
frame (zone ids through the region's zone map, qubit and gate indices
offset per tenant) and concatenated into one machine-wide
:class:`~repro.sim.Program`.

Concatenation *is* interleaving here: the ledger's timing fold starts an
op when its qubits and blocking zones are free, and disjoint regions
share neither, so tenants' op streams overlap in time and the combined
makespan is the max — not the sum — of the per-tenant makespans (the
queueing simulator and the tests both lean on this).

A single admitted job whose region covers the whole machine returns its
program **unchanged** — same ops, same placement, same compiler name —
which is the byte-identical differential guarantee against the direct
compile path.

:func:`slice_ledger` splits one machine-wide
:class:`~repro.sim.events.EventLedger` back into per-tenant accounting
(op/shuttle counts, fidelity charge, makespan) using the op-owner table
the packer records: integer counts partition exactly; log-fidelity
slices sum to the machine total up to float re-association.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..circuits import QuantumCircuit
from ..hardware import Machine, resolve_machine
from ..physics import resolve_physics
from ..pipeline.facade import compile as compile_circuit
from ..sim.events import EventLedger, replay
from ..sim.ops import (
    ChainSwapOp,
    FiberGateOp,
    GateOp,
    MergeOp,
    MoveOp,
    Operation,
    SplitOp,
    SwapGateOp,
)
from ..sim.program import Program
from ..workloads import get_benchmark
from .policies import Policy, resolve_policy
from .regions import Region, RegionAllocator, RegionError


@dataclass(frozen=True)
class BatchJob:
    """One queued compilation request."""

    job_id: str
    workload: str
    tenant: str = "default"
    compiler: str = "muss-ti"
    priority: int = 0
    weight: float = 1.0


@dataclass
class _Entry:
    """Queue entry: a job plus its resolved circuit (what policies see)."""

    job: BatchJob
    circuit: QuantumCircuit

    @property
    def tenant(self) -> str:
        return self.job.tenant

    @property
    def priority(self) -> int:
        return self.job.priority

    @property
    def weight(self) -> float:
        return self.job.weight

    @property
    def qubits(self) -> int:
        return self.circuit.num_qubits


@dataclass(frozen=True)
class Placement:
    """One admitted job: its region, region-frame program, and the
    offsets that lift it into the machine frame."""

    job: BatchJob
    region: Region
    program: Program
    qubit_offset: int
    gate_offset: int


@dataclass(frozen=True)
class BatchSchedule:
    """The machine-wide result of one admission round.

    ``owners[i]`` is the index into ``placements`` of the tenant that
    op ``i`` of ``program`` belongs to — the key
    :func:`slice_ledger` uses to split accounting per tenant.
    """

    machine: Machine
    program: Program
    placements: tuple[Placement, ...]
    owners: tuple[int, ...]
    deferred: tuple[BatchJob, ...]

    def ledger(self) -> EventLedger:
        """Replay the combined program (legality-checked once)."""
        return replay(self.program)

    @property
    def admitted(self) -> tuple[BatchJob, ...]:
        return tuple(placement.job for placement in self.placements)


def _remap_op(
    op: Operation, zone_map: dict[int, int], qubit_offset: int, gate_offset: int
) -> Operation:
    """Lift one region-frame op into the machine frame."""
    op_class = op.__class__
    if op_class is GateOp:
        return GateOp(
            gate=op.gate.on(*(q + qubit_offset for q in op.gate.qubits)),
            zone=zone_map[op.zone],
            circuit_index=(
                op.circuit_index + gate_offset if op.circuit_index >= 0 else -1
            ),
        )
    if op_class is MoveOp:
        return MoveOp(
            qubit=op.qubit + qubit_offset,
            source_zone=zone_map[op.source_zone],
            destination_zone=zone_map[op.destination_zone],
        )
    if op_class is SplitOp:
        return SplitOp(qubit=op.qubit + qubit_offset, zone=zone_map[op.zone])
    if op_class is MergeOp:
        return MergeOp(
            qubit=op.qubit + qubit_offset, zone=zone_map[op.zone], side=op.side
        )
    if op_class is ChainSwapOp:
        return ChainSwapOp(zone=zone_map[op.zone], position=op.position)
    if op_class is FiberGateOp:
        return FiberGateOp(
            gate=op.gate.on(*(q + qubit_offset for q in op.gate.qubits)),
            zone_a=zone_map[op.zone_a],
            zone_b=zone_map[op.zone_b],
            circuit_index=(
                op.circuit_index + gate_offset if op.circuit_index >= 0 else -1
            ),
        )
    if op_class is SwapGateOp:
        return SwapGateOp(
            qubit_a=op.qubit_a + qubit_offset,
            qubit_b=op.qubit_b + qubit_offset,
            zone_a=zone_map[op.zone_a],
            zone_b=zone_map[op.zone_b],
        )
    raise TypeError(f"unknown op type {type(op).__name__}")


def _lift_placement(
    placement: dict[int, tuple[int, ...]],
    zone_map: dict[int, int],
    qubit_offset: int,
) -> dict[int, tuple[int, ...]]:
    return {
        zone_map[zone_id]: tuple(q + qubit_offset for q in chain)
        for zone_id, chain in placement.items()
    }


def _combine(
    machine: Machine, placements: tuple[Placement, ...], deferred: tuple[BatchJob, ...]
) -> BatchSchedule:
    """Lift every placement into the machine frame and concatenate."""
    single = len(placements) == 1 and placements[0].qubit_offset == 0
    if single and placements[0].region.zone_map == {
        zone_id: zone_id for zone_id in placements[0].region.zone_ids
    } and len(placements[0].region.zone_ids) == machine.num_zones:
        # Whole-machine single tenant: the region-frame program already
        # is the machine-frame program — hand it back untouched so the
        # multiprog path is byte-identical to the direct compile path.
        program = placements[0].program
        return BatchSchedule(
            machine=machine,
            program=program,
            placements=placements,
            owners=(0,) * len(program.operations),
            deferred=deferred,
        )

    total_qubits = sum(p.program.circuit.num_qubits for p in placements)
    combined_circuit = QuantumCircuit(max(total_qubits, 1), name="multiprog")
    operations: list[Operation] = []
    owners: list[int] = []
    initial_placement: dict[int, tuple[int, ...]] = {}
    final_placement: dict[int, tuple[int, ...]] = {}
    compile_time_s = 0.0
    for index, placement in enumerate(placements):
        zone_map = placement.region.zone_map
        offset = placement.qubit_offset
        for gate in placement.program.circuit.gates:
            combined_circuit.append(gate.on(*(q + offset for q in gate.qubits)))
        for op in placement.program.operations:
            operations.append(
                _remap_op(op, zone_map, offset, placement.gate_offset)
            )
            owners.append(index)
        initial_placement.update(
            _lift_placement(placement.program.initial_placement, zone_map, offset)
        )
        if placement.program.final_placement:
            final_placement.update(
                _lift_placement(placement.program.final_placement, zone_map, offset)
            )
        compile_time_s += placement.program.compile_time_s

    program = Program(
        machine=machine,
        circuit=combined_circuit,
        initial_placement=initial_placement,
        operations=operations,
        compiler_name="multiprog",
        compile_time_s=compile_time_s,
        metadata={"tenants": float(len(placements))},
        final_placement=final_placement,
    )
    return BatchSchedule(
        machine=machine,
        program=program,
        placements=placements,
        owners=tuple(owners),
        deferred=deferred,
    )


def pack_batch(
    jobs,
    machine: Machine | str,
    *,
    policy: str | Policy = "first-fit",
    window: int | None = None,
) -> BatchSchedule:
    """One admission round: policy-ordered packing of *jobs* onto *machine*.

    Jobs the policy never admits (they do not fit the free hardware, or
    exceed the whole machine) come back in ``deferred`` — a later round
    (or the queueing simulator) retries them; nothing is silently lost.
    """
    jobs = tuple(jobs)
    entries = [_Entry(job=job, circuit=get_benchmark(job.workload)) for job in jobs]
    if isinstance(machine, str):
        needed = max((entry.qubits for entry in entries), default=1)
        machine = resolve_machine(machine, needed)
    policy = (
        resolve_policy(policy) if window is None
        else resolve_policy(policy, window=window)
    )
    allocator = RegionAllocator(machine)

    queue = list(entries)
    placements: list[Placement] = []
    qubit_offset = 0
    gate_offset = 0
    while queue:
        index = policy.select(
            queue, fits=lambda entry: allocator.fits(entry.qubits)
        )
        if index is None:
            break
        entry = queue.pop(index)
        region = allocator.allocate(entry.qubits)
        result = compile_circuit(entry.circuit, region.machine(), entry.job.compiler)
        program = result.program
        placements.append(
            Placement(
                job=entry.job,
                region=region,
                program=program,
                qubit_offset=qubit_offset,
                gate_offset=gate_offset,
            )
        )
        policy.record_service(
            entry.tenant, float(len(region.units)), entry.weight
        )
        qubit_offset += program.circuit.num_qubits
        gate_offset += len(program.circuit.gates)

    deferred = tuple(entry.job for entry in queue)
    if not placements:
        raise RegionError(
            "no job could be admitted: the smallest queued circuit does not "
            "fit the machine"
        )
    return _combine(machine, tuple(placements), deferred)


def slice_ledger(
    ledger: EventLedger,
    owners: tuple[int, ...],
    num_slices: int,
    params=None,
) -> list[dict]:
    """Per-tenant accounting slices of one machine-wide ledger.

    Returns one dict per owner index: ``operations`` and ``shuttles``
    (integer counts — they partition the machine totals exactly),
    ``log10_fidelity`` (this tenant's charge total, including the
    background-heat charges its ops accrued), and ``makespan_us`` (when
    this tenant's last op finishes).  Summing the slices recovers the
    machine-wide ledger: exactly for the counts, up to float
    re-association for the fidelity.
    """
    if len(owners) != len(ledger):
        raise ValueError(
            f"owners table has {len(owners)} entries for {len(ledger)} ops"
        )
    if isinstance(params, str):
        params = resolve_physics(params)
    slices = [
        {
            "operations": 0,
            "shuttles": 0,
            "log10_fidelity": 0.0,
            "makespan_us": 0.0,
        }
        for _ in range(num_slices)
    ]
    for event, owner in zip(ledger.events(params), owners):
        entry = slices[owner]
        entry["operations"] += 1
        if event.kind == "move":
            entry["shuttles"] += 1
        entry["log10_fidelity"] += event.log10_charge
        if event.end_us > entry["makespan_us"]:
            entry["makespan_us"] = event.end_us
    return slices
