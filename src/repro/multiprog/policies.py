"""Admission/packing policies for the multi-tenant batch scheduler.

A policy answers one question: *given the queue and what currently fits,
which job is admitted next?*  It sees lightweight queue entries exposing
``tenant`` / ``priority`` / ``weight`` / ``qubits`` plus a ``fits``
predicate supplied by the caller (the region allocator's view of free
hardware), and returns the index of the chosen entry — or ``None`` when
nothing admissible remains, which ends the current admission round.

Shipped policies:

===========  ==============================================================
first-fit    earliest-arrived job that fits (FIFO with head-of-line skip)
best-fit     largest fitting job by qubit count (packs big jobs first,
             so fragmentation cannot starve them behind small ones)
priority     highest ``priority`` among fitting jobs, FIFO within a class
fair-share   the fitting job of the tenant with the least weight-normalised
             attained service (classic weighted max-min fairness)
===========  ==============================================================

Every policy caps its queue scan at ``window`` entries so a deep backlog
in the million-job simulator stays O(window) per admission, and every
tie breaks on the earliest queue position — policies are deterministic
functions of the queue, which is what makes two simulator runs with one
seed byte-identical.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

#: Queue-scan bound per admission decision (keeps the 100k-job simulator
#: linear even under transient backlog).
DEFAULT_WINDOW = 256


class Policy:
    """Base admission policy (see module docstring for the contract)."""

    #: Registry name (subclasses set it).
    name = "policy"
    #: One-line human description for ``repro fleet policies``.
    summary = ""

    def __init__(self, window: int = DEFAULT_WINDOW) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.window = window

    def _candidates(self, queue: Sequence, fits: Callable) -> list[int]:
        """Indices of fitting entries within the scan window."""
        return [
            index
            for index in range(min(len(queue), self.window))
            if fits(queue[index])
        ]

    def select(self, queue: Sequence, fits: Callable) -> int | None:
        raise NotImplementedError

    def record_service(self, tenant: str, amount: float, weight: float) -> None:
        """Attained-service bookkeeping; only fair-share cares."""

    def reset(self) -> None:
        """Forget accumulated state (a fresh simulation run)."""


class FirstFitPolicy(Policy):
    name = "first-fit"
    summary = "earliest queued job that fits (FIFO with head-of-line skip)"

    def select(self, queue: Sequence, fits: Callable) -> int | None:
        for index in range(min(len(queue), self.window)):
            if fits(queue[index]):
                return index
        return None


class BestFitPolicy(Policy):
    name = "best-fit"
    summary = "largest fitting job by qubit count (anti-fragmentation)"

    def select(self, queue: Sequence, fits: Callable) -> int | None:
        best = None
        for index in self._candidates(queue, fits):
            if best is None or queue[index].qubits > queue[best].qubits:
                best = index
        return best


class PriorityPolicy(Policy):
    name = "priority"
    summary = "highest-priority fitting job, FIFO within a priority class"

    def select(self, queue: Sequence, fits: Callable) -> int | None:
        best = None
        for index in self._candidates(queue, fits):
            if best is None or queue[index].priority > queue[best].priority:
                best = index
        return best


class FairSharePolicy(Policy):
    name = "fair-share"
    summary = "least weight-normalised attained service (weighted max-min)"

    def __init__(self, window: int = DEFAULT_WINDOW) -> None:
        super().__init__(window)
        self._served: dict[str, float] = {}

    def _normalised(self, tenant: str, weight: float) -> float:
        return self._served.get(tenant, 0.0) / max(weight, 1e-12)

    def select(self, queue: Sequence, fits: Callable) -> int | None:
        best = None
        best_share = 0.0
        for index in self._candidates(queue, fits):
            entry = queue[index]
            share = self._normalised(entry.tenant, entry.weight)
            if best is None or share < best_share:
                best = index
                best_share = share
        return best

    def record_service(self, tenant: str, amount: float, weight: float) -> None:
        self._served[tenant] = self._served.get(tenant, 0.0) + amount

    def reset(self) -> None:
        self._served.clear()


#: Registered policies, in the order ``repro fleet sim`` runs them.
POLICIES: dict[str, type[Policy]] = {
    cls.name: cls
    for cls in (FirstFitPolicy, BestFitPolicy, PriorityPolicy, FairSharePolicy)
}

#: Every shipped policy name.
DEFAULT_POLICIES: tuple[str, ...] = tuple(POLICIES)


def available_policies() -> list[str]:
    return list(POLICIES)


def resolve_policy(policy: str | Policy, *, window: int = DEFAULT_WINDOW) -> Policy:
    """A fresh policy instance (stateful policies must not leak service
    history between runs)."""
    if isinstance(policy, Policy):
        return policy
    try:
        cls = POLICIES[policy]
    except KeyError:
        raise ValueError(
            f"unknown policy {policy!r} (registered: {', '.join(POLICIES)})"
        ) from None
    return cls(window=window)


def jain_index(values: Sequence[float]) -> float:
    """Jain's fairness index: 1.0 is perfectly fair, 1/n maximally not.

    Defined over non-negative per-tenant allocations; an empty or
    all-zero vector is vacuously fair.
    """
    total = sum(values)
    squares = sum(value * value for value in values)
    if not values or squares <= 0.0:
        return 1.0
    return (total * total) / (len(values) * squares)
